// Package netsim is the flow-level congestion simulator that stands in for
// the Aries hardware. For every simulation round (one application time step,
// or a fraction of one), the caller supplies the traffic demands of all jobs
// sharing the machine; the simulator routes them adaptively over the
// dragonfly, derives per-link utilization, converts contention into stall
// cycles and slowdown factors, and accumulates the Table II hardware
// counters into a counters.Board.
//
// Two properties of the real system are preserved because the analyses
// depend on them:
//
//  1. Slowdowns and counters come from the same mechanism — shared links.
//     A job is slowed exactly when the routers it can see record stalls,
//     which is what makes counter-based deviation prediction (§V-B) work.
//  2. Transit congestion (router tiles) and endpoint congestion (processor
//     tiles) are distinct. Flows with many packets per flit (small-message
//     traffic, e.g. AMG) saturate endpoint packet processing and show up in
//     PT_* stall counters; bandwidth-heavy flows (MILC) saturate link
//     bandwidth and show up in RT_* stall counters — the split Figure 9
//     reports.
//
// The round loop is the campaign's hot path; docs/PERFORMANCE.md records
// the layout and caching decisions below (flat candidate arenas, epoch-
// scoped path caches, static-split precomputation) together with the
// determinism contract every further optimization must obey: serial,
// parallel, and distributed execution stay byte-identical.
package netsim

import (
	"fmt"
	"hash/fnv"
	"time"

	"dragonvar/internal/counters"
	"dragonvar/internal/monitor"
	"dragonvar/internal/rng"
	"dragonvar/internal/routing"
	"dragonvar/internal/telemetry"
	"dragonvar/internal/topology"
)

// Config sets the physical constants of the simulated interconnect. The
// defaults (see DefaultConfig) are loosely calibrated to Aries: what matters
// for the paper's analyses is the relative balance between link bandwidth,
// injection bandwidth, and packet processing rate, not the absolute values.
type Config struct {
	// LinkBandwidth is the flit capacity of a green/black link, flits/s.
	LinkBandwidth float64
	// BlueBandwidth is the flit capacity of a global link, flits/s.
	BlueBandwidth float64
	// InjectionBandwidth is the NIC flit capacity of one router, flits/s
	// (all of the router's nodes combined).
	InjectionBandwidth float64
	// PacketRate is the endpoint message/transaction processing capacity of
	// one router, messages/s (all its NICs combined). Small-message traffic
	// exhausts this before it exhausts bandwidth.
	PacketRate float64
	// StallScale converts queueing delay into stall cycles per flit, so
	// counters have hardware-plausible magnitudes.
	StallScale float64
	// FlitsPerPacket is used to derive packet counts from flit counts for
	// the RT_PKT_TOT counter.
	FlitsPerPacket float64
	// MaxMinimal and MaxValiant bound the adaptive-routing candidate set.
	MaxMinimal int
	MaxValiant int
	// Adaptive enables load-aware path splitting. When false the simulator
	// always uses the first minimal path (the ablation of §VI's related
	// simulation studies: variability collapses onto fewer links and
	// hotspots form). Superseded by Routing; kept as the back-compat
	// default when Routing is empty.
	Adaptive bool
	// Routing names the routing policy ("minimal", "valiant", "adaptive",
	// "feedback" — see routing.PolicyNames). Empty falls back to the
	// Adaptive flag: true means "adaptive", false means "minimal".
	Routing string
	// NonMinimalBias scales the cost of non-minimal candidates in the
	// adaptive/feedback split (UGAL's threshold knob); 0 means neutral (1),
	// reproducing the historical split exactly.
	NonMinimalBias float64
	// RelaxationRounds is the number of route/measure iterations per round;
	// 2 is enough for the split weights to react to the round's own load.
	// Policies with load-independent splits (routing.StaticWeights) always
	// collapse to a single iteration — the loads cannot change between
	// iterations, so one pass is bit-identical to many.
	RelaxationRounds int
}

// PolicyName returns the effective routing-policy name: Routing when set,
// otherwise the Adaptive flag's historical meaning.
func (c Config) PolicyName() string {
	if c.Routing != "" {
		return c.Routing
	}
	if c.Adaptive {
		return "adaptive"
	}
	return "minimal"
}

// DefaultConfig returns the calibration used by the campaign.
func DefaultConfig() Config {
	return Config{
		LinkBandwidth:      5.25e9, // ~5 GB/s expressed in flit units
		BlueBandwidth:      4.7e9,
		InjectionBandwidth: 8e9,
		PacketRate:         4e7,
		StallScale:         0.9,
		FlitsPerPacket:     12,
		MaxMinimal:         3,
		MaxValiant:         1,
		Adaptive:           true,
		RelaxationRounds:   2,
	}
}

// Flow is a directed traffic demand between two routers for one round.
type Flow struct {
	Src, Dst topology.RouterID
	// Flits is the data volume of the flow during the round.
	Flits float64
	// Packets is the number of messages/transactions carrying those flits.
	// High message counts at low flit volume model small-message traffic,
	// which is throttled by endpoint processing rather than bandwidth.
	Packets float64
	// RequestFraction is the share of the flow's flits on request virtual
	// channels (VC0); the rest are responses (VC4). Put/Send traffic is
	// request-dominated; Get-based protocols see more response flits.
	RequestFraction float64
}

// Result reports what one simulation round did to each flow and to the
// machine.
type Result struct {
	// Slowdown[i] is the contention delay factor (≥ 1) experienced by
	// flows[i]: the factor by which the flow's communication was stretched
	// relative to an idle machine.
	Slowdown []float64
	// MaxLinkUtilization is the highest per-link utilization observed.
	MaxLinkUtilization float64
	// MeanLinkUtilization averages utilization over links that carried
	// any traffic.
	MeanLinkUtilization float64
}

// Network simulates one machine. It is not safe for concurrent use.
type Network struct {
	topo *topology.Dragonfly
	eng  *routing.Engine
	cfg  Config

	// Board accumulates the cumulative hardware counters, like the real
	// chips do; consumers snapshot and diff it.
	Board *counters.Board

	s *rng.Stream

	// per-link state, reused across rounds
	linkLoad []float64 // flits assigned to each link this round
	linkCap  []float64 // current flit capacity (baseCap derated by faults)
	baseCap  []float64 // fault-free flit capacity of each link
	prevLoad []float64 // utilizations of the previous relaxation iteration
	bgLoad   []float64 // background (precomputed) flits per link this round
	anyDead  bool      // whether any link currently has zero capacity

	// active-set tracking: only links/routers touched this round are reset
	// and scanned, so round cost scales with traffic, not machine size
	activeLinks   []topology.LinkID
	linkOnList    []bool
	activeRouters []topology.RouterID
	routerOnList  []bool
	fgSeen        []bool // scratch for RoutedFlows foreground-link dedup

	// per-router endpoint state, reused across rounds
	injFlits []float64 // flits injected at each router this round
	ejFlits  []float64 // flits ejected at each router this round
	injPkts  []float64
	ejPkts   []float64

	// per-round delay memos: queueDelay is pure, so its value per link
	// (and per endpoint direction) is computed once after the relaxation
	// settles and read by every flow that crosses it, instead of being
	// recomputed per path hop. Entries are only valid for links/routers
	// active this round — exactly the ones flows reference.
	qdLink []float64 // queueDelay(util) per active link
	injFD  []float64 // queueDelay of injection flit pressure per active router
	ejFD   []float64 // … ejection flit pressure
	injPD  []float64 // … injection packet pressure
	ejPD   []float64 // … ejection packet pressure

	// routing policy: candidate generation and split weighting are
	// delegated to one routing.Policy per network (SetPolicy switches)
	policy routing.Policy
	// splitSlice is the policy's allocation-free arena split (nil when the
	// policy doesn't implement routing.SliceSplitter); staticSplit records
	// that the split is load-independent (routing.StaticWeights), letting
	// Resolve precompute the weights once per run
	splitSlice  routing.SliceSplitter
	splitBulk   routing.BulkSplitter
	staticSplit bool
	// invCost records that the policy's split is the plain inverse-path-
	// cost rule (routing.InverseCostSplitter) with bias invBias, letting
	// the round loop fuse the split arithmetic with the share scatter
	invCost bool
	invBias float64
	// loadOf adapts prevLoad for the generic policy LoadFunc view; built
	// once (prevLoad is never reallocated)
	loadOf routing.LoadFunc
	// fb is the deterministic stall-feedback tracker feeding the
	// "feedback" policy; nil for every other policy
	fb *monitor.StallFeedback

	// path cache: flows between the same router pair recur every step.
	// Keyed per (policy, dead-link signature) epoch — different policies
	// build different candidate sets for the same pair, and the dead-link
	// set is the only fault state that changes candidates — with pathCache
	// aliasing the active epoch's map. Health changes repoint the alias
	// (edge-scoped invalidation) instead of dropping entries, so derate-
	// only fault epochs and previously seen dead sets keep their caches.
	pathCaches map[cacheKey]map[uint64][]routing.Path
	pathCache  map[uint64][]routing.Path
	deadSig    uint64
	// shared is the optional second-level cache pooled across identically
	// seeded Networks (SharePathCache); nil for standalone simulators.
	shared *PathCache

	// reuseSlow lets RunRound reuse one Slowdown buffer across rounds
	// (ReuseSlowdowns) instead of allocating per round.
	reuseSlow   bool
	slowScratch []float64
	flitScratch []float64 // per-flow Flits, gathered for the CSR walk

	// telemetry handles, captured at construction; nil (no-op) when the
	// process runs without telemetry. Observation-only: nothing in the
	// simulation reads them, so results are identical with telemetry on.
	tmCacheHits   *telemetry.Counter
	tmCacheMisses *telemetry.Counter
	tmCacheShared *telemetry.Counter
	tmCacheInval  *telemetry.Counter
	tmRounds      *telemetry.Counter
	tmRoundFlits  *telemetry.Histogram
	tmRoundSecs   *telemetry.Histogram
	tmMaxUtil     *telemetry.Gauge
}

// New creates a network simulator over machine d. The stream drives path
// sampling and must be dedicated to this network.
func New(d *topology.Dragonfly, cfg Config, s *rng.Stream) *Network {
	n := &Network{
		topo:       d,
		eng:        routing.NewEngine(d),
		cfg:        cfg,
		Board:      counters.NewBoard(d.Cfg.NumRouters()),
		s:          s,
		linkLoad:   make([]float64, len(d.Links)),
		linkCap:    make([]float64, len(d.Links)),
		prevLoad:   make([]float64, len(d.Links)),
		bgLoad:     make([]float64, len(d.Links)),
		injFlits:   make([]float64, d.Cfg.NumRouters()),
		ejFlits:    make([]float64, d.Cfg.NumRouters()),
		injPkts:    make([]float64, d.Cfg.NumRouters()),
		ejPkts:     make([]float64, d.Cfg.NumRouters()),
		qdLink:     make([]float64, len(d.Links)),
		injFD:      make([]float64, d.Cfg.NumRouters()),
		ejFD:       make([]float64, d.Cfg.NumRouters()),
		injPD:      make([]float64, d.Cfg.NumRouters()),
		ejPD:       make([]float64, d.Cfg.NumRouters()),
		pathCaches: make(map[cacheKey]map[uint64][]routing.Path),

		tmCacheHits:   telemetry.C(telemetry.MNetsimCacheHits),
		tmCacheMisses: telemetry.C(telemetry.MNetsimCacheMisses),
		tmCacheShared: telemetry.C(telemetry.MNetsimCacheShared),
		tmCacheInval:  telemetry.C(telemetry.MNetsimCacheInval),
		tmRounds:      telemetry.C(telemetry.MNetsimRounds),
		tmRoundFlits:  telemetry.H(telemetry.MNetsimRoundFlits, telemetry.CountBuckets),
		tmRoundSecs:   telemetry.H(telemetry.MNetsimRoundSecs, telemetry.SecondsBuckets),
		tmMaxUtil:     telemetry.G(telemetry.GNetsimMaxUtil),
	}
	n.linkOnList = make([]bool, len(d.Links))
	n.routerOnList = make([]bool, d.Cfg.NumRouters())
	n.fgSeen = make([]bool, len(d.Links))
	n.baseCap = make([]float64, len(d.Links))
	for i, l := range d.Links {
		if l.Type == topology.Blue {
			n.baseCap[i] = cfg.BlueBandwidth
		} else {
			n.baseCap[i] = cfg.LinkBandwidth
		}
	}
	copy(n.linkCap, n.baseCap)
	n.loadOf = func(l topology.LinkID) float64 { return n.prevLoad[l] }
	if err := n.SetPolicy(cfg.PolicyName()); err != nil {
		// configs are validated where they enter the system (cluster.New,
		// the CLIs); by this point an unknown name is a programming error
		panic(err)
	}
	return n
}

// SetPolicy switches the network to the named routing policy. Each
// policy's candidate paths are cached separately, so switching back and
// forth never mixes candidate sets. The "feedback" policy additionally
// attaches a deterministic per-network stall tracker (see
// monitor.StallFeedback), reset per run via ResetFeedback.
func (n *Network) SetPolicy(name string) error {
	pcfg := routing.PolicyConfig{
		MaxMinimal:     n.cfg.MaxMinimal,
		MaxValiant:     n.cfg.MaxValiant,
		NonMinimalBias: n.cfg.NonMinimalBias,
	}
	if name == "feedback" {
		if n.fb == nil {
			n.fb = monitor.NewStallFeedback(n.topo.Cfg.Groups, 0)
		}
		fb := n.fb
		pcfg.GroupStall = func(g topology.GroupID) float64 { return fb.Ratio(int(g)) }
	}
	pol, err := routing.NewPolicy(name, pcfg)
	if err != nil {
		return fmt.Errorf("netsim: %w", err)
	}
	n.policy = pol
	n.splitSlice, _ = pol.(routing.SliceSplitter)
	n.splitBulk, _ = pol.(routing.BulkSplitter)
	n.staticSplit = routing.StaticWeights(pol)
	n.invCost = false
	if ic, ok := pol.(routing.InverseCostSplitter); ok {
		if b, ok := ic.InverseCostBias(); ok {
			n.invCost = true
			n.invBias = b
		}
	}
	if name != "feedback" {
		n.fb = nil
	}
	n.repointCache()
	return nil
}

// Policy returns the name of the active routing policy.
func (n *Network) Policy() string { return n.policy.Name() }

// SharePathCache attaches a shared second-level candidate-path cache.
// Local misses consult (and populate) the shared cache before recomputing.
// Only attach the same cache to Networks whose candidate resolution is
// bit-identical — same topology, Config, and seed (see PathCache).
func (n *Network) SharePathCache(c *PathCache) { n.shared = c }

// ResetFeedback clears the stall-feedback state read by the "feedback"
// policy; a no-op under any other policy. Campaign workers call this next
// to Board.Reset before every run, so a run's feedback trajectory — like
// its counters — depends only on the run itself.
func (n *Network) ResetFeedback() {
	if n.fb != nil {
		n.fb.Reset()
	}
}

// repointCache aliases pathCache to the active (policy, dead-set) epoch.
func (n *Network) repointCache() {
	key := cacheKey{policy: n.policy.Name(), sig: n.deadSig}
	cache, ok := n.pathCaches[key]
	if !ok {
		cache = make(map[uint64][]routing.Path)
		n.pathCaches[key] = cache
	}
	n.pathCache = cache
}

// SetLinkHealth applies a fault view to the fabric: each link's capacity
// becomes baseCap · factor(link), links with factor ≤ 0 are dead and are
// avoided by all subsequent route resolution, and the path cache is
// switched to the epoch of the new dead-link set (capacity derating alone
// never changes candidate paths, so epochs with the same dead set — in
// particular, every fault view that kills nothing — share one cache).
// Pass nil to restore the fault-free machine. The caller re-resolves
// routes after changing health; stale RoutedFlows remain usable but their
// traffic across dead links is priced at effectively infinite congestion
// rather than dropped.
func (n *Network) SetLinkHealth(factor func(topology.LinkID) float64) {
	if factor == nil {
		copy(n.linkCap, n.baseCap)
		n.anyDead = false
		n.eng.SetAvoid(nil)
		n.setEpoch(0)
		return
	}
	anyDead := false
	h := fnv.New64a()
	var buf [4]byte
	for i := range n.linkCap {
		f := factor(topology.LinkID(i))
		if f < 0 {
			f = 0
		} else if f > 1 {
			f = 1
		}
		n.linkCap[i] = n.baseCap[i] * f
		if n.linkCap[i] <= 0 {
			anyDead = true
			// fold the dead link's ID into the epoch signature; iteration
			// is in ascending LinkID order, so equal dead sets hash equal
			buf[0] = byte(i)
			buf[1] = byte(i >> 8)
			buf[2] = byte(i >> 16)
			buf[3] = byte(i >> 24)
			h.Write(buf[:])
		}
	}
	n.anyDead = anyDead
	sig := uint64(0)
	if anyDead {
		n.eng.SetAvoid(func(l topology.LinkID) bool { return n.linkCap[l] <= 0 })
		sig = h.Sum64()
	} else {
		n.eng.SetAvoid(nil)
	}
	n.setEpoch(sig)
}

// setEpoch switches the dead-link cache epoch (no-op if unchanged).
func (n *Network) setEpoch(sig uint64) {
	if sig == n.deadSig {
		return
	}
	n.tmCacheInval.Add(1)
	n.deadSig = sig
	n.repointCache()
}

// Topology returns the machine being simulated.
func (n *Network) Topology() *topology.Dragonfly { return n.topo }

// Config returns the simulator configuration.
func (n *Network) Config() Config { return n.cfg }

// pairKey builds the path-cache key.
func pairKey(a, b topology.RouterID) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// candidates returns the cached adaptive-routing candidate set for a pair.
// Path sampling uses a per-pair stream split from n.s rather than n.s
// itself, so the candidate set for a pair depends only on the network's
// seed and the pair — never on which pairs were resolved before it. This
// is what lets runs be simulated in any order (or sharded across workers,
// each with an identically-seeded Network) with bit-identical results:
// a cache hit — local or shared — and a recomputation always return the
// same paths.
func (n *Network) candidates(a, b topology.RouterID) []routing.Path {
	key := pairKey(a, b)
	if p, ok := n.pathCache[key]; ok {
		n.tmCacheHits.Add(1)
		return p
	}
	if n.shared != nil {
		ck := cacheKey{policy: n.policy.Name(), sig: n.deadSig}
		if p, ok := n.shared.lookup(ck, key); ok {
			n.tmCacheShared.Add(1)
			n.pathCache[key] = p
			return p
		}
		n.tmCacheMisses.Add(1)
		p := n.policy.Candidates(n.eng, a, b, n.s.Split(fmt.Sprintf("pair-%d-%d", a, b)))
		n.pathCache[key] = p
		n.shared.store(ck, key, p)
		return p
	}
	n.tmCacheMisses.Add(1)
	p := n.policy.Candidates(n.eng, a, b, n.s.Split(fmt.Sprintf("pair-%d-%d", a, b)))
	n.pathCache[key] = p
	return p
}

// deadUtil is the utilization assigned to a dead (zero-capacity) link so
// that any stale route still crossing it is priced out by the adaptive
// split and shows up as an enormous — but finite — slowdown.
const deadUtil = 1e6

// queueDelay is the congestion delay at utilization u: an M/M/1-style
// convex curve, clamped so overload stays finite but very painful.
func queueDelay(u float64) float64 {
	if u <= 0 {
		return 0
	}
	const uMax = 0.97
	if u > uMax {
		// linear continuation beyond the pole so overload keeps ordering
		base := uMax / (1 - uMax)
		return base + (u-uMax)*25
	}
	return u / (1 - u)
}

// clamp1 is math.Min(v, 1) for the simulator's non-negative, non-NaN
// operands — same result, but it inlines (archMin does not).
func clamp1(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}

// touchLink marks a link as active this round.
func (n *Network) touchLink(l topology.LinkID) {
	if !n.linkOnList[l] {
		n.linkOnList[l] = true
		n.activeLinks = append(n.activeLinks, l)
	}
}

// touchRouter marks a router as active this round.
func (n *Network) touchRouter(r topology.RouterID) {
	if !n.routerOnList[r] {
		n.routerOnList[r] = true
		n.activeRouters = append(n.activeRouters, r)
	}
}

// RoutedFlows holds the resolved routing candidate sets for a fixed list
// of flows. An application's router-pair list does not change across time
// steps, so callers resolve once per run and reuse.
//
// Alongside the per-flow path slices (views into the path cache), the
// candidate set is flattened into one arena — links/pathEnd/hops/minimal,
// flow- then path-major — so the round loop walks dense slices instead of
// chasing [][]Path pointers, and the split weights live in one flat buffer
// (weights). Load-independent policies (routing.StaticWeights) have their
// weights computed once at resolve time; everything else is recomputed per
// relaxation iteration with identical arithmetic to the historical
// per-path code.
type RoutedFlows struct {
	paths [][]routing.Path

	// flat candidate arena: path p of the RoutedFlows spans
	// links[pathEnd[p-1]:pathEnd[p]]; the paths of flow i span
	// pathEnd[flowEnd[i-1]:flowEnd[i]].
	links   []topology.LinkID
	pathEnd []int32
	flowEnd []int32
	hops    []float64 // float64(hop count) per path, for the slowdown divide
	minimal []bool    // Path.Minimal per path
	weights []float64 // split weight per path

	// static records that weights was precomputed at resolve time (the
	// resolving policy's split is load-independent); policy is the name of
	// the policy the flows were resolved under, so a SetPolicy switch
	// after Resolve falls back to per-round splits like it always did.
	static bool
	policy string

	// zeroW, for inverse-cost policies, is the split the policy produces
	// over an unloaded fabric — exactly what relaxation iteration 0
	// computes on a round with no background and no faults, so such
	// rounds skip the iteration-0 cost gathering entirely. Σ(1 + 0.0)
	// over a path's hops is exactly float64(hop count), so the values
	// are bit-identical to the live computation.
	zeroW []float64

	// zeroLink/zeroEnd/zeroFlow/zeroCW regroup the iteration-0 scatter by
	// link (CSR): link zeroLink[k] receives the contributions
	// zeroFlow/zeroCW[zeroEnd[k-1]:zeroEnd[k]], each Flits[flow]·weight,
	// in exactly the order the flow-major scatter would have added them —
	// per-link addition order is what fixes the floating-point result, so
	// the regrouped walk is bit-identical while touching memory
	// sequentially. Flows with Src == Dst are excluded at build time;
	// zero-Flits flows contribute an exact +0.0, matching the scatter's
	// share != 0 skip (the sums are non-negative, so adding +0.0 is the
	// identity).
	zeroLink []topology.LinkID
	zeroEnd  []int32
	zeroFlow []int32
	zeroCW   []float64

	// fgLinks caches the first-touch-ordered, deduplicated link list of
	// the active (Src≠Dst, Flits>0) flows — the per-round "mark foreground
	// links active" walk — revalidated against fgMask because Flits gating
	// can change between rounds.
	fgLinks []topology.LinkID
	fgMask  []bool
	fgBuilt bool
}

// buildRouted resolves candidates for the flows and flattens them into the
// arena layout. healthy selects ResolveHealthy's partition check.
func (n *Network) buildRouted(flows []Flow, healthy bool) (*RoutedFlows, error) {
	r := &RoutedFlows{
		paths:   make([][]routing.Path, len(flows)),
		flowEnd: make([]int32, len(flows)),
		policy:  n.policy.Name(),
	}
	nPaths := 0
	nLinks := 0
	for i, f := range flows {
		paths := n.candidates(f.Src, f.Dst)
		if healthy && len(paths) == 0 && f.Src != f.Dst {
			return nil, fmt.Errorf("netsim: flow %d (router %d → %d): %w", i, f.Src, f.Dst, routing.ErrPartitioned)
		}
		r.paths[i] = paths
		nPaths += len(paths)
		for _, p := range paths {
			nLinks += len(p.Links)
		}
		r.flowEnd[i] = int32(nPaths)
	}
	r.links = make([]topology.LinkID, 0, nLinks)
	r.pathEnd = make([]int32, 0, nPaths)
	r.hops = make([]float64, 0, nPaths)
	r.minimal = make([]bool, 0, nPaths)
	r.weights = make([]float64, nPaths)
	for _, paths := range r.paths {
		for _, p := range paths {
			r.links = append(r.links, p.Links...)
			r.pathEnd = append(r.pathEnd, int32(len(r.links)))
			r.hops = append(r.hops, float64(len(p.Links)))
			r.minimal = append(r.minimal, p.Minimal)
		}
	}
	if n.staticSplit {
		// load-independent split: compute the weights once, here; the
		// round loop never recomputes them (static policies never read
		// the load view, so passing nil is safe)
		ps := int32(0)
		for i, paths := range r.paths {
			pe := r.flowEnd[i]
			n.policy.SplitWeights(n.eng, paths, nil, r.weights[ps:pe])
			ps = pe
		}
		r.static = true
	}
	if n.invCost && !r.static {
		r.zeroW = make([]float64, nPaths)
		bias := n.invBias
		ps := int32(0)
		for i := range r.paths {
			pe := r.flowEnd[i]
			var total float64
			for j := ps; j < pe; j++ {
				cost := r.hops[j] // Σ over hops of (1 + 0.0), exactly
				if !r.minimal[j] && bias != 1 {
					cost *= bias
				}
				w := 1 / (cost + 1e-9)
				r.zeroW[j] = w
				total += w
			}
			if total > 0 {
				inv := 1 / total
				for j := ps; j < pe; j++ {
					r.zeroW[j] *= inv
				}
			}
			ps = pe
		}
		r.buildZeroCSR(flows, len(n.linkLoad))
	}
	return r, nil
}

// buildZeroCSR regroups the zero-load iteration-0 scatter by link (see the
// zeroLink field docs). numLinks sizes the counting scratch.
func (r *RoutedFlows) buildZeroCSR(flows []Flow, numLinks int) {
	cnt := make([]int32, numLinks)
	total := 0
	ps, ls := int32(0), int32(0)
	for i := range flows {
		pe := r.flowEnd[i]
		le := ls
		if pe > ps {
			le = r.pathEnd[pe-1]
		}
		if flows[i].Src != flows[i].Dst {
			for _, l := range r.links[ls:le] {
				if cnt[l] == 0 {
					r.zeroLink = append(r.zeroLink, l)
				}
				cnt[l]++
				total++
			}
		}
		ps, ls = pe, le
	}
	r.zeroEnd = make([]int32, len(r.zeroLink))
	off := make([]int32, numLinks)
	cum := int32(0)
	for k, l := range r.zeroLink {
		off[l] = cum
		cum += cnt[l]
		r.zeroEnd[k] = cum
	}
	r.zeroFlow = make([]int32, total)
	r.zeroCW = make([]float64, total)
	ps, ls = 0, 0
	for i := range flows {
		pe := r.flowEnd[i]
		le := ls
		if pe > ps {
			le = r.pathEnd[pe-1]
		}
		if flows[i].Src != flows[i].Dst {
			start := ls
			for j := ps; j < pe; j++ {
				end := r.pathEnd[j]
				w := r.zeroW[j]
				for _, l := range r.links[start:end] {
					p := off[l]
					r.zeroFlow[p] = int32(i)
					r.zeroCW[p] = w
					off[l] = p + 1
				}
				start = end
			}
		}
		ps, ls = pe, le
	}
}

// Resolve computes (and caches) the candidate paths for each flow.
func (n *Network) Resolve(flows []Flow) *RoutedFlows {
	r, _ := n.buildRouted(flows, false)
	return r
}

// ResolveHealthy is Resolve for a faulted fabric: it errors (wrapping
// routing.ErrPartitioned) when any flow's endpoints are disconnected by
// link failures instead of silently returning an unroutable flow.
func (n *Network) ResolveHealthy(flows []Flow) (*RoutedFlows, error) {
	return n.buildRouted(flows, true)
}

// refreshForeground revalidates (and if needed rebuilds) the cached
// deduplicated foreground link list against this round's activity mask.
func (n *Network) refreshForeground(r *RoutedFlows, flows []Flow) {
	if r.fgBuilt && len(r.fgMask) == len(flows) {
		same := true
		for i := range flows {
			f := &flows[i]
			if r.fgMask[i] != (f.Src != f.Dst && f.Flits > 0) {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	if cap(r.fgMask) < len(flows) {
		r.fgMask = make([]bool, len(flows))
	} else {
		r.fgMask = r.fgMask[:len(flows)]
	}
	r.fgLinks = r.fgLinks[:0]
	seen := n.fgSeen
	ps, ls := int32(0), int32(0)
	for i := range flows {
		f := &flows[i]
		pe := r.flowEnd[i]
		le := ls
		if pe > ps {
			le = r.pathEnd[pe-1]
		}
		active := f.Src != f.Dst && f.Flits > 0
		r.fgMask[i] = active
		if active {
			// dedup is foreground-internal only: the round loop re-checks
			// linkOnList per link, so background-first touch order — and
			// with it the order-dependent mean-utilization sum — is
			// exactly what the per-flow walk produced
			for _, l := range r.links[ls:le] {
				if !seen[l] {
					seen[l] = true
					r.fgLinks = append(r.fgLinks, l)
				}
			}
		}
		ps, ls = pe, le
	}
	for _, l := range r.fgLinks {
		seen[l] = false
	}
	r.fgBuilt = true
}

// ReuseSlowdowns controls whether RunRound results share one Slowdown
// buffer across rounds. Off (the default) every round allocates a fresh
// slice, so callers may retain results; on, each round overwrites the
// previous round's slice — the campaign workers and benchmarks, which
// consume a result before the next round, turn it on to keep the round
// loop allocation-free.
func (n *Network) ReuseSlowdowns(on bool) { n.reuseSlow = on }

// RunRound simulates `duration` seconds of traffic: the adaptively routed
// foreground flows plus any number of precomputed background footprints
// (production jobs whose routing was fixed at placement). Returns the
// per-flow slowdowns of the foreground flows; counters for all traffic
// accumulate into n.Board.
func (n *Network) RunRound(flows []Flow, background []ScaledLoad, duration float64) Result {
	return n.RunRoundRouted(flows, n.Resolve(flows), background, duration)
}

// RunRoundRouted is RunRound with pre-resolved foreground routes; flows
// must match the list the routes were resolved for pair by pair.
func (n *Network) RunRoundRouted(flows []Flow, routed *RoutedFlows, background []ScaledLoad, duration float64) Result {
	if duration <= 0 {
		duration = 1
	}
	if n.tmRounds != nil { // telemetry on: per-round throughput accounting
		roundStart := time.Now()
		defer n.tmRoundSecs.ObserveSince(roundStart)
		n.tmRounds.Add(1)
		var offered float64
		for _, f := range flows {
			offered += f.Flits
		}
		n.tmRoundFlits.Observe(offered)
	}

	// reset the previous round's active state
	for _, l := range n.activeLinks {
		n.linkLoad[l] = 0
		n.bgLoad[l] = 0
		n.prevLoad[l] = 0
		n.linkOnList[l] = false
	}
	n.activeLinks = n.activeLinks[:0]
	for _, r := range n.activeRouters {
		n.injFlits[r] = 0
		n.ejFlits[r] = 0
		n.injPkts[r] = 0
		n.ejPkts[r] = 0
		n.routerOnList[r] = false
	}
	n.activeRouters = n.activeRouters[:0]

	// fold in the background footprints: link loads, endpoint loads, and
	// the endpoint flit-arrival counters
	anyBG := false
	for _, bg := range background {
		if bg.Set == nil || bg.Scale <= 0 {
			continue
		}
		anyBG = true
		s := bg.Scale
		for i, id := range bg.Set.LinkIDs {
			if n.linkCap[id] <= 0 {
				// the link is dead; its static background footprint was
				// routed before the fault and simply does not flow
				continue
			}
			n.bgLoad[id] += bg.Set.LinkFlits[i] * s
			n.touchLink(id)
		}
		for i, r := range bg.Set.RouterIDs {
			n.injFlits[r] += bg.Set.InjFlits[i] * s
			n.ejFlits[r] += bg.Set.EjFlits[i] * s
			n.injPkts[r] += bg.Set.InjPkts[i] * s
			n.ejPkts[r] += bg.Set.EjPkts[i] * s
			n.touchRouter(r)
			rc := n.Board.At(r)
			rc[counters.PTFlitVC0] += bg.Set.ArriveVC0[i] * s
			rc[counters.PTFlitVC4] += bg.Set.ArriveVC4[i] * s
			rc[counters.PTFlitTot] += (bg.Set.ArriveVC0[i] + bg.Set.ArriveVC4[i]) * s
		}
	}
	// mark the foreground's links active up front so resets stay complete
	// (via the RoutedFlows' cached dedup of the per-flow link walk)
	n.refreshForeground(routed, flows)
	for _, l := range routed.fgLinks {
		n.touchLink(l)
	}
	// the adaptive foreground reacts to the background from iteration 0
	invDur := 1 / duration
	for _, l := range n.activeLinks {
		if n.linkCap[l] <= 0 {
			n.prevLoad[l] = deadUtil
			continue
		}
		n.prevLoad[l] = n.bgLoad[l] / n.linkCap[l] * invDur
	}

	rounds := n.cfg.RelaxationRounds
	if rounds < 1 {
		rounds = 1
	}
	// static weights cannot react to load, so every relaxation iteration
	// reproduces the same link loads — one pass is bit-identical to many.
	// routed.static only counts when the flows were resolved (and their
	// weights precomputed) under the policy that's still active.
	static := routed.static && routed.policy == n.policy.Name()
	if static {
		rounds = 1
	}
	useBulk := n.splitBulk != nil
	useSlice := n.splitSlice != nil
	// the fused path runs the inverse-cost split inline — the cost gather,
	// normalization, and share scatter become one walk over the candidate
	// arena, with identical arithmetic to SplitWeightsBulk plus the apply
	// loop below; faulted fabrics take the generic path (dead-link
	// skipping keeps that loop honest, and fault epochs are rare)
	useFused := !static && n.invCost && !n.anyDead
	// on a round with no background the iteration-0 load view is all
	// zeros, so the resolve-time zero-load split substitutes for the
	// whole first cost gather (only when the flows were resolved under
	// the policy that's still active — the bias must match)
	zeroFirst := useFused && !anyBG && routed.zeroW != nil && routed.policy == n.policy.Name()
	if zeroFirst {
		// gather Flits densely for the CSR walk, and guard the one case
		// where adding a share is not the same as skipping it: a negative
		// Flits value (never produced by the workload models)
		if cap(n.flitScratch) < len(flows) {
			n.flitScratch = make([]float64, len(flows))
		}
		fl := n.flitScratch[:len(flows)]
		for i := range flows {
			v := flows[i].Flits
			if v < 0 {
				zeroFirst = false
				break
			}
			fl[i] = v
		}
	}
	linkLoad, bgLoad, prevLoad, linkCap := n.linkLoad, n.bgLoad, n.prevLoad, n.linkCap
	arenaLinks, arenaPathEnd, arenaWeights := routed.links, routed.pathEnd, routed.weights
	flowEnd, minimal, fgMask := routed.flowEnd, routed.minimal, routed.fgMask
	for it := 0; it < rounds; it++ {
		if anyBG {
			for _, l := range n.activeLinks {
				linkLoad[l] = bgLoad[l]
			}
		} else {
			// no background: every bgLoad entry is zero, skip the read
			for _, l := range n.activeLinks {
				linkLoad[l] = 0
			}
		}
		switch {
		case zeroFirst && it == 0:
			// walk the precomputed per-link CSR chains: each link's loads
			// accumulate in the exact order the flow-major scatter used
			if rounds == 1 {
				// a later iteration won't overwrite them, so the slowdown
				// loop needs the zero-load weights in the arena
				copy(arenaWeights, routed.zeroW)
			}
			fl := n.flitScratch
			zf, zcw, ze := routed.zeroFlow, routed.zeroCW, routed.zeroEnd
			start := int32(0)
			for li, l := range routed.zeroLink {
				end := ze[li]
				v := linkLoad[l]
				for k := start; k < end; k++ {
					v += fl[zf[k]] * zcw[k]
				}
				linkLoad[l] = v
				start = end
			}
		case useFused:
			bias := n.invBias
			pathStart, linkStart := int32(0), int32(0)
			for i := range flows {
				ps, ls := pathStart, linkStart
				pe := flowEnd[i]
				pathStart = pe
				if pe > ps {
					linkStart = arenaPathEnd[pe-1]
				}
				if !fgMask[i] || pe == ps {
					continue
				}
				f := &flows[i]
				// pass 1: unnormalized inverse-cost weights
				var total float64
				start := ls
				for j := ps; j < pe; j++ {
					end := arenaPathEnd[j]
					cost := 0.0
					for k := start; k < end; k++ {
						cost += 1 + prevLoad[arenaLinks[k]]
					}
					if !minimal[j] && bias != 1 {
						cost *= bias
					}
					w := 1 / (cost + 1e-9)
					arenaWeights[j] = w
					total += w
					start = end
				}
				// pass 2: normalize and scatter the shares (inv stays 1
				// when total ≤ 0, matching the bulk splitter's no-op —
				// multiplying by exactly 1.0 is the float identity)
				inv := 1.0
				if total > 0 {
					inv = 1 / total
				}
				start = ls
				for j := ps; j < pe; j++ {
					end := arenaPathEnd[j]
					w := arenaWeights[j] * inv
					arenaWeights[j] = w
					share := f.Flits * w
					if share != 0 {
						for k := start; k < end; k++ {
							linkLoad[arenaLinks[k]] += share
						}
					}
					start = end
				}
			}
		default:
			if !static && useBulk {
				// one bulk call computes every active flow's split — the
				// policy's load-aware weighting; for the adaptive policy
				// with neutral bias this reproduces the historical
				// inverse-cost split bit for bit
				n.splitBulk.SplitWeightsBulk(n.eng, arenaLinks, arenaPathEnd, flowEnd, minimal, fgMask, prevLoad, arenaWeights)
			}
			pathStart, linkStart := int32(0), int32(0)
			for i := range flows {
				f := &flows[i]
				ps, ls := pathStart, linkStart
				pe := flowEnd[i]
				pathStart = pe
				if pe > ps {
					linkStart = arenaPathEnd[pe-1]
				}
				if f.Src == f.Dst || f.Flits <= 0 {
					continue
				}
				weights := arenaWeights[ps:pe]
				if !static && !useBulk {
					if useSlice {
						n.splitSlice.SplitWeightsSlice(n.eng, arenaLinks, ls, arenaPathEnd[ps:pe], minimal[ps:pe], prevLoad, weights)
					} else {
						n.policy.SplitWeights(n.eng, routed.paths[i], n.loadOf, weights)
					}
				}
				start := ls
				if n.anyDead {
					for j, w := range weights {
						end := arenaPathEnd[ps+int32(j)]
						share := f.Flits * w
						if share != 0 {
							for _, l := range arenaLinks[start:end] {
								if linkCap[l] <= 0 {
									continue // dead link carries nothing
								}
								linkLoad[l] += share
							}
						}
						start = end
					}
				} else {
					// healthy fabric: the dead-link check is hoisted out
					// of the innermost loop
					for j, w := range weights {
						end := arenaPathEnd[ps+int32(j)]
						share := f.Flits * w
						if share != 0 {
							for _, l := range arenaLinks[start:end] {
								linkLoad[l] += share
							}
						}
						start = end
					}
				}
			}
		}
		if it < rounds-1 {
			// feed utilizations back for the next iteration; the final
			// iteration's update is fused into the settling pass below
			for _, l := range n.activeLinks {
				if linkCap[l] <= 0 {
					prevLoad[l] = deadUtil
					continue
				}
				prevLoad[l] = linkLoad[l] / linkCap[l] * invDur
			}
		}
	}

	// Final settle: one pass over the active links computes the round's
	// utilizations, the max/mean summary, and the per-link queueing-delay
	// memo the slowdown loop reads — the same values the three separate
	// walks produced, in the same summation order.
	var res Result
	if n.reuseSlow {
		if cap(n.slowScratch) < len(flows) {
			n.slowScratch = make([]float64, len(flows))
		}
		res.Slowdown = n.slowScratch[:len(flows)]
	} else {
		res.Slowdown = make([]float64, len(flows))
	}
	util := n.prevLoad // final per-link utilization
	qd := n.qdLink
	var utilSum float64
	var utilN int
	for _, l := range n.activeLinks {
		var u float64
		if linkCap[l] <= 0 {
			u = deadUtil
		} else {
			u = linkLoad[l] / linkCap[l] * invDur
		}
		util[l] = u
		qd[l] = queueDelay(u)
		if u > res.MaxLinkUtilization {
			res.MaxLinkUtilization = u
		}
		if linkLoad[l] > 0 {
			utilSum += u
			utilN++
		}
	}
	if utilN > 0 {
		res.MeanLinkUtilization = utilSum / float64(utilN)
	}

	// Endpoint loads.
	for i := range flows {
		f := &flows[i]
		if f.Flits <= 0 {
			continue
		}
		n.injFlits[f.Src] += f.Flits
		n.ejFlits[f.Dst] += f.Flits
		n.injPkts[f.Src] += f.Packets
		n.ejPkts[f.Dst] += f.Packets
		n.touchRouter(f.Src)
		n.touchRouter(f.Dst)
	}
	n.tmMaxUtil.Set(res.MaxLinkUtilization)

	n.accumulateTransitCounters(duration)
	n.accumulateEndpointCounters(flows, duration)
	if n.fb != nil {
		// fold this round's per-group stall/flit deltas into the feedback
		// EWMAs; the feedback policy reads them from the NEXT round on, so
		// the loop is causal and the round's own result stays a pure
		// function of its inputs
		n.fb.Commit()
	}

	// Per-flow slowdowns: transit queueing along the flow's weighted paths
	// plus endpoint queueing at its source and destination. queueDelay is
	// a pure function, so every active link's delay — and every active
	// router's four endpoint delays — is computed once into the memos and
	// summed in exactly the order the per-hop recomputation used.
	injCap := n.cfg.InjectionBandwidth * duration
	pktCap := n.cfg.PacketRate * duration
	for _, r := range n.activeRouters {
		n.injFD[r] = queueDelay(n.injFlits[r] / injCap)
		n.ejFD[r] = queueDelay(n.ejFlits[r] / injCap)
		n.injPD[r] = queueDelay(n.injPkts[r] / pktCap)
		n.ejPD[r] = queueDelay(n.ejPkts[r] / pktCap)
	}
	hops := routed.hops
	pathStart, linkStart := int32(0), int32(0)
	for i := range flows {
		f := &flows[i]
		ps, ls := pathStart, linkStart
		pe := flowEnd[i]
		pathStart = pe
		if pe > ps {
			linkStart = arenaPathEnd[pe-1]
		}
		if f.Src == f.Dst || f.Flits <= 0 {
			res.Slowdown[i] = 1
			continue
		}
		var transit float64
		start := ls
		for j := ps; j < pe; j++ {
			end := arenaPathEnd[j]
			w := arenaWeights[j]
			if w == 0 {
				start = end
				continue
			}
			var pathDelay float64
			for k := start; k < end; k++ {
				pathDelay += qd[arenaLinks[k]]
			}
			// normalize by hops so the value is delay per traversed link
			transit += w * pathDelay / hops[j]
			start = end
		}
		endFlit := n.injFD[f.Src] + n.ejFD[f.Dst]
		endPkt := n.injPD[f.Src] + n.ejPD[f.Dst]
		res.Slowdown[i] = 1 + 0.8*transit + 0.5*endFlit + 0.5*endPkt

		// Backpressure echo: credit exhaustion on congested downstream
		// links propagates stalls back to the tiles of the routers the
		// flow's packets sit in — which is why per-job counter collection
		// works on the real machine. The echo is attenuated: backpressure
		// decays over hops, so remote congestion is only partially visible
		// in a job's own counters (leaving room for the io/sys features of
		// §V-C to add information).
		echo := 0.4 * f.Flits * transit * n.cfg.StallScale
		if echo > 0 {
			src := n.Board.At(f.Src)
			dst := n.Board.At(f.Dst)
			half := echo / 2
			src[counters.RTRBStl] += half
			dst[counters.RTRBStl] += half
			twoX := half * clamp1(transit)
			src[counters.RTRB2xUsg] += twoX
			dst[counters.RTRB2xUsg] += twoX
		}
	}
	return res
}

// accumulateTransitCounters writes the RT_* counters for this round: each
// link's traffic is received by both endpoint routers' router tiles (we
// split the undirected aggregate evenly; flow direction is already encoded
// in the endpoint counters).
func (n *Network) accumulateTransitCounters(duration float64) {
	b := n.Board
	linkLoad, linkCap := n.linkLoad, n.linkCap
	topoLinks := n.topo.Links
	stallScale := n.cfg.StallScale
	fpp := n.cfg.FlitsPerPacket
	fb := n.fb
	for _, i := range n.activeLinks {
		load := linkLoad[i]
		if load == 0 || linkCap[i] <= 0 {
			continue
		}
		l := topoLinks[i]
		u := load / (linkCap[i] * duration)
		stalls := load * queueDelay(u) * stallScale
		half := load / 2
		pkts := load / fpp / 2
		stHalf := stalls / 2
		if fb != nil {
			// the same Δstall/Δflit the monitor's group rollup consumes
			fb.Accumulate(int(n.topo.Group(l.A)), stHalf, half)
			fb.Accumulate(int(n.topo.Group(l.B)), stHalf, half)
		}
		// 2X usage grows superlinearly with utilization: both stall events
		// in a cycle require sustained backpressure.
		twoX := stHalf * clamp1(u)
		rc := b.At(l.A)
		rc[counters.RTFlitTot] += half
		rc[counters.RTPktTot] += pkts
		rc[counters.RTRBStl] += stHalf
		rc[counters.RTRB2xUsg] += twoX
		rc = b.At(l.B)
		rc[counters.RTFlitTot] += half
		rc[counters.RTPktTot] += pkts
		rc[counters.RTRBStl] += stHalf
		rc[counters.RTRB2xUsg] += twoX
	}
}

// accumulateEndpointCounters writes the PT_* counters: processor tiles see
// the traffic of their own NICs, split over request (VC0) and response
// (VC4) virtual channels, and stall when injection bandwidth or packet
// processing saturates.
func (n *Network) accumulateEndpointCounters(flows []Flow, duration float64) {
	b := n.Board
	injCap := n.cfg.InjectionBandwidth * duration
	pktCap := n.cfg.PacketRate * duration

	// flit arrivals per router, split by VC
	for i := range flows {
		f := &flows[i]
		if f.Flits <= 0 {
			continue
		}
		req := f.RequestFraction
		if req < 0 {
			req = 0
		} else if req > 1 {
			req = 1
		}
		// data arrives at the destination's processor tiles
		dst := b.At(f.Dst)
		dst[counters.PTFlitVC0] += f.Flits * req
		dst[counters.PTFlitVC4] += f.Flits * (1 - req)
		dst[counters.PTFlitTot] += f.Flits
		// responses/acks flow back to the source's processor tiles
		src := b.At(f.Src)
		ack := f.Packets // one ack-sized response per packet
		src[counters.PTFlitVC4] += ack
		src[counters.PTFlitTot] += ack
	}

	for _, r := range n.activeRouters {
		flits := n.injFlits[r] + n.ejFlits[r]
		pkts := n.injPkts[r] + n.ejPkts[r]
		if flits == 0 && pkts == 0 {
			continue
		}
		uFlit := (n.injFlits[r] + n.ejFlits[r]) / (2 * injCap)
		uPkt := (n.injPkts[r] + n.ejPkts[r]) / (2 * pktCap)
		// Request-channel stalls are driven by packet processing (small
		// messages); response-channel stalls by bandwidth pressure.
		stallRq := pkts * queueDelay(uPkt) * n.cfg.StallScale
		stallRs := flits * queueDelay(uFlit) * n.cfg.StallScale / n.cfg.FlitsPerPacket
		rc := b.At(r)
		rc[counters.PTRBStlRq] += stallRq
		rc[counters.PTRBStlRs] += stallRs
		rc[counters.PTCBStlRq] += 0.6 * stallRq
		rc[counters.PTCBStlRs] += 0.6 * stallRs
		rc[counters.PTRB2xUsg] += stallRq * clamp1(uPkt)
		// Table II: PT_PKT_TOT is derived as PT_RB_STL_RQ + PT_RB_STL_RS.
		rc[counters.PTPktTot] += stallRq + stallRs
	}
}

// ResetCache drops every locally cached candidate path across all policies
// and epochs (the shared second-level cache, if attached, is untouched —
// it never goes stale: entries are keyed by the dead-set epoch they were
// resolved under). Call between campaigns if memory is a concern — the
// caches grow with the number of distinct router pairs seen.
func (n *Network) ResetCache() {
	n.tmCacheInval.Add(1)
	for key := range n.pathCaches {
		delete(n.pathCaches, key)
	}
	n.repointCache()
}
