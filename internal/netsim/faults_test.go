package netsim

import (
	"errors"
	"math"
	"testing"

	"dragonvar/internal/rng"
	"dragonvar/internal/routing"
	"dragonvar/internal/topology"
)

func faultTestNet(t *testing.T) *Network {
	t.Helper()
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	return New(d, DefaultConfig(), rng.New(11))
}

func TestSetLinkHealthDerates(t *testing.T) {
	n := faultTestNet(t)
	base := n.baseCap[0]
	n.SetLinkHealth(func(l topology.LinkID) float64 {
		if l == 0 {
			return 0.5
		}
		return 1
	})
	if n.linkCap[0] != base/2 {
		t.Fatalf("linkCap[0] = %v, want %v", n.linkCap[0], base/2)
	}
	if n.linkCap[1] != n.baseCap[1] {
		t.Fatal("healthy link derated")
	}
	n.SetLinkHealth(nil)
	if n.linkCap[0] != base {
		t.Fatal("restore failed")
	}
}

func TestDeratedLinkRaisesSlowdown(t *testing.T) {
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	flows := []Flow{{Src: 0, Dst: 1, Flits: 3e9, Packets: 1e5, RequestFraction: 0.9}}

	clean := New(d, DefaultConfig(), rng.New(11))
	resClean := clean.RunRound(flows, nil, 1)

	hurt := New(d, DefaultConfig(), rng.New(11))
	// halve every link the clean run could have used
	hurt.SetLinkHealth(func(l topology.LinkID) float64 { return 0.5 })
	resHurt := hurt.RunRound(flows, nil, 1)

	if !(resHurt.Slowdown[0] > resClean.Slowdown[0]) {
		t.Fatalf("derated slowdown %v not above clean %v", resHurt.Slowdown[0], resClean.Slowdown[0])
	}
	if math.IsNaN(resHurt.Slowdown[0]) || math.IsInf(resHurt.Slowdown[0], 0) {
		t.Fatal("slowdown not finite")
	}
}

func TestDeadLinksRerouteNotNaN(t *testing.T) {
	n := faultTestNet(t)
	d := n.Topology()
	// kill one of the blue links between groups 0 and 1; traffic must
	// shift to the survivors with finite results
	blues := d.GlobalBetween(0, 1)
	dead := blues[0]
	n.SetLinkHealth(func(l topology.LinkID) float64 {
		if l == dead {
			return 0
		}
		return 1
	})
	a := d.RouterAt(0, 0, 0)
	b := d.RouterAt(1, 0, 0)
	flows := []Flow{{Src: a, Dst: b, Flits: 1e9, Packets: 1e4, RequestFraction: 0.8}}
	routed, err := n.ResolveHealthy(flows)
	if err != nil {
		t.Fatal(err)
	}
	res := n.RunRoundRouted(flows, routed, nil, 1)
	if math.IsNaN(res.Slowdown[0]) || math.IsInf(res.Slowdown[0], 0) || res.Slowdown[0] < 1 {
		t.Fatalf("slowdown = %v", res.Slowdown[0])
	}
	for r := 0; r < n.Board.NumRouters(); r++ {
		rc := n.Board.At(topology.RouterID(r))
		for _, v := range rc {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("router %d counter not finite: %v", r, rc)
			}
		}
	}
}

func TestResolveHealthyPartitioned(t *testing.T) {
	n := faultTestNet(t)
	d := n.Topology()
	var isolated topology.RouterID = 3
	deadSet := map[topology.LinkID]bool{}
	for _, l := range d.Incident(isolated) {
		deadSet[l] = true
	}
	n.SetLinkHealth(func(l topology.LinkID) float64 {
		if deadSet[l] {
			return 0
		}
		return 1
	})
	_, err := n.ResolveHealthy([]Flow{{Src: isolated, Dst: 0, Flits: 1}})
	if !errors.Is(err, routing.ErrPartitioned) {
		t.Fatalf("err = %v, want ErrPartitioned", err)
	}
	// a pair not involving the isolated router still resolves
	if _, err := n.ResolveHealthy([]Flow{{Src: 0, Dst: 1, Flits: 1}}); err != nil {
		t.Fatalf("healthy pair: %v", err)
	}
}
