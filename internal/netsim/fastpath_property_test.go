package netsim

import (
	"math"
	"testing"

	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

// The round loop has three code paths for distributing flows over links:
// the generic bulk splitter, the fused inverse-cost relaxation, and the
// iteration-0 precomputed-split CSR walk. They are performance tiers, not
// semantic variants — these tests pin them byte-identical under randomized
// flow, background-load, and fault sequences.

func randFlows(s *rng.Stream, d *topology.Dragonfly, n int) []Flow {
	flows := make([]Flow, 0, n)
	for i := 0; i < n; i++ {
		g1 := s.Intn(9)
		g2 := s.Intn(9)
		f := Flow{
			Src:             d.RouterAt(topology.GroupID(g1), s.Intn(4), s.Intn(6)),
			Dst:             d.RouterAt(topology.GroupID(g2), s.Intn(4), s.Intn(6)),
			Flits:           math.Floor(s.Float64()*1e8) + 1,
			Packets:         math.Floor(s.Float64()*1e4) + 1,
			RequestFraction: 0.8,
		}
		switch s.Intn(8) {
		case 0:
			f.Dst = f.Src // self-traffic: no links touched
		case 1:
			f.Flits = 0 // zero-volume flow: still routed, adds nothing
		}
		flows = append(flows, f)
	}
	return flows
}

// TestFusedRoundMatchesGenericRound drives two identically seeded networks
// through the same randomized campaign — only one of them is allowed the
// fused inverse-cost fast path — and requires bit-identical results and
// counter boards at every step.
func TestFusedRoundMatchesGenericRound(t *testing.T) {
	// adaptive is the one built-in policy whose netsim wiring enables the
	// fused path (feedback carries a live GroupStall hook, which opts out)
	for _, pol := range []string{"adaptive"} {
		t.Run(pol, func(t *testing.T) {
			d, err := topology.New(topology.Small())
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.Routing = pol
			fast := New(d, cfg, rng.New(7))
			slow := New(d, cfg, rng.New(7))
			slow.invCost = false // force the generic bulk splitter
			if !fast.invCost {
				t.Fatalf("policy %q should enable the inverse-cost fast path", pol)
			}

			s := rng.New(1234)
			var bg []ScaledLoad
			for iter := 0; iter < 30; iter++ {
				flows := randFlows(s, d, 32+s.Intn(64))

				// a third of the rounds run under randomized link faults,
				// exercising the dead-link path (fast path self-disables)
				switch s.Intn(3) {
				case 0:
					deadA := topology.LinkID(s.Intn(len(fast.linkCap)))
					deadB := topology.LinkID(s.Intn(len(fast.linkCap)))
					factor := func(l topology.LinkID) float64 {
						if l == deadA || l == deadB {
							return 0
						}
						return 1
					}
					fast.SetLinkHealth(factor)
					slow.SetLinkHealth(factor)
				default:
					fast.SetLinkHealth(nil)
					slow.SetLinkHealth(nil)
				}

				// half the rounds add scaled background load, which forces
				// the relaxation off the iteration-0 CSR walk
				bg = bg[:0]
				if s.Intn(2) == 0 {
					bgFlows := randFlows(s, d, 16)
					ls := fast.BuildLoadSet(bgFlows)
					bg = append(bg, ScaledLoad{Set: ls, Scale: 0.5 + s.Float64()})
				}

				dur := 0.5 + s.Float64()
				r1 := fast.RunRoundRouted(flows, fast.Resolve(flows), bg, dur)
				r2 := slow.RunRoundRouted(flows, slow.Resolve(flows), bg, dur)

				if r1.MaxLinkUtilization != r2.MaxLinkUtilization ||
					r1.MeanLinkUtilization != r2.MeanLinkUtilization {
					t.Fatalf("iter %d: utilization diverged: fast (%v, %v) vs generic (%v, %v)",
						iter, r1.MaxLinkUtilization, r1.MeanLinkUtilization,
						r2.MaxLinkUtilization, r2.MeanLinkUtilization)
				}
				for i := range r1.Slowdown {
					if r1.Slowdown[i] != r2.Slowdown[i] {
						t.Fatalf("iter %d: slowdown[%d] diverged: %v vs %v",
							iter, i, r1.Slowdown[i], r2.Slowdown[i])
					}
				}
				b1, b2 := fast.Board.Data, slow.Board.Data
				if len(b1) != len(b2) {
					t.Fatalf("board sizes differ")
				}
				for i := range b1 {
					if b1[i] != b2[i] {
						t.Fatalf("iter %d: counter board diverged at %d: %v vs %v",
							iter, i, b1[i], b2[i])
					}
				}
			}
		})
	}
}

// TestRoundLoopAllocFree pins the steady-state allocation count of the hot
// round loop: with slowdown-slice reuse enabled, a warm RunRoundRouted must
// not allocate at all.
func TestRoundLoopAllocFree(t *testing.T) {
	for _, pol := range []string{"adaptive", "minimal"} {
		t.Run(pol, func(t *testing.T) {
			d, err := topology.New(topology.Small())
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.Routing = pol
			n := New(d, cfg, rng.New(1))
			n.ReuseSlowdowns(true)
			flows := randFlows(rng.New(9), d, 64)
			routed := n.Resolve(flows)
			n.RunRoundRouted(flows, routed, nil, 1.0) // warm-up
			allocs := testing.AllocsPerRun(20, func() {
				n.RunRoundRouted(flows, routed, nil, 1.0)
			})
			if allocs != 0 {
				t.Fatalf("warm round loop allocated %.1f times per run, want 0", allocs)
			}
		})
	}
}

// TestCandidateCacheHitAllocFree pins candidate selection on a warm path
// cache: looking up an already-resolved router pair must not allocate.
func TestCandidateCacheHitAllocFree(t *testing.T) {
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	n := New(d, DefaultConfig(), rng.New(1))
	flows := randFlows(rng.New(9), d, 64)
	n.Resolve(flows) // populate the per-pair candidate cache
	allocs := testing.AllocsPerRun(100, func() {
		for _, f := range flows {
			n.candidates(f.Src, f.Dst)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm candidate lookup allocated %.1f times per run, want 0", allocs)
	}
}

// TestSharedPathCacheDeterminism verifies that pooling resolved paths across
// identically seeded networks changes nothing about the routing decisions:
// a network resolving against a cache pre-warmed by its twin produces the
// same candidates and split weights as one resolving cold.
func TestSharedPathCacheDeterminism(t *testing.T) {
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	flows := randFlows(rng.New(9), d, 128)

	cold := New(d, cfg, rng.New(3))
	rCold := cold.Resolve(flows)

	shared := NewPathCache()
	warmer := New(d, cfg, rng.New(3))
	warmer.SharePathCache(shared)
	warmer.Resolve(flows) // populate the shared pool

	warm := New(d, cfg, rng.New(3))
	warm.SharePathCache(shared)
	rWarm := warm.Resolve(flows)

	if len(rCold.links) != len(rWarm.links) {
		t.Fatalf("link arenas differ in size: %d vs %d", len(rCold.links), len(rWarm.links))
	}
	for i := range rCold.links {
		if rCold.links[i] != rWarm.links[i] {
			t.Fatalf("link %d differs: %v vs %v", i, rCold.links[i], rWarm.links[i])
		}
	}
	res1 := cold.RunRoundRouted(flows, rCold, nil, 1.0)
	res2 := warm.RunRoundRouted(flows, rWarm, nil, 1.0)
	for i := range res1.Slowdown {
		if res1.Slowdown[i] != res2.Slowdown[i] {
			t.Fatalf("slowdown[%d] differs: %v vs %v", i, res1.Slowdown[i], res2.Slowdown[i])
		}
	}
}
