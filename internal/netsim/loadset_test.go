package netsim

import (
	"math"
	"testing"

	"dragonvar/internal/counters"
	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

func TestBuildLoadSetConservesVolume(t *testing.T) {
	n := newNet(t, DefaultConfig())
	d := n.Topology()
	flows := []Flow{
		{Src: d.RouterAt(0, 1, 1), Dst: d.RouterAt(2, 2, 2), Flits: 1000, Packets: 10, RequestFraction: 0.8},
		{Src: d.RouterAt(1, 0, 0), Dst: d.RouterAt(1, 3, 5), Flits: 500, Packets: 5, RequestFraction: 1},
	}
	ls := n.BuildLoadSet(flows)
	if ls.NumLinks() == 0 {
		t.Fatal("empty load set")
	}
	// endpoint totals conserved
	var inj, ej float64
	for i := range ls.RouterIDs {
		inj += ls.InjFlits[i]
		ej += ls.EjFlits[i]
	}
	if math.Abs(inj-1500) > 1e-9 || math.Abs(ej-1500) > 1e-9 {
		t.Fatalf("endpoint totals: inj=%v ej=%v, want 1500", inj, ej)
	}
	// every link's load is positive and the total link flits is at least
	// the flow volume (each flow crosses ≥1 link)
	var total float64
	for _, v := range ls.LinkFlits {
		if v <= 0 {
			t.Fatal("non-positive link load in set")
		}
		total += v
	}
	if total < 1500 {
		t.Fatalf("link flits = %v, want >= 1500", total)
	}
}

func TestBuildLoadSetSkipsDegenerate(t *testing.T) {
	n := newNet(t, DefaultConfig())
	d := n.Topology()
	r := d.RouterAt(0, 0, 0)
	ls := n.BuildLoadSet([]Flow{
		{Src: r, Dst: r, Flits: 100, Packets: 1},
		{Src: r, Dst: d.RouterAt(1, 1, 1), Flits: 0, Packets: 1},
	})
	if ls.NumLinks() != 0 || len(ls.RouterIDs) != 0 {
		t.Fatal("degenerate flows should produce an empty load set")
	}
}

func TestBackgroundLoadSlowsForeground(t *testing.T) {
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	n := New(d, DefaultConfig(), rng.New(5))
	src := d.RouterAt(2, 1, 0)
	dst := d.RouterAt(2, 1, 3)
	fg := []Flow{{Src: src, Dst: dst, Flits: 1e8, Packets: 1e4, RequestFraction: 1}}

	idle := n.RunRound(fg, nil, 1.0)

	// heavy background over the same row
	var bgFlows []Flow
	for c := 0; c < 6; c++ {
		bgFlows = append(bgFlows, Flow{Src: src, Dst: dst, Flits: 3e9, Packets: 1e5, RequestFraction: 1})
	}
	ls := n.BuildLoadSet(bgFlows)
	busy := n.RunRound(fg, []ScaledLoad{{Set: ls, Scale: 1}}, 1.0)

	if busy.Slowdown[0] <= idle.Slowdown[0] {
		t.Fatalf("background load should slow foreground: idle %v busy %v",
			idle.Slowdown[0], busy.Slowdown[0])
	}
	// scale doubles the pain
	busier := n.RunRound(fg, []ScaledLoad{{Set: ls, Scale: 2}}, 1.0)
	if busier.Slowdown[0] <= busy.Slowdown[0] {
		t.Fatalf("doubled background should slow more: %v vs %v", busy.Slowdown[0], busier.Slowdown[0])
	}
}

func TestBackgroundContributesCounters(t *testing.T) {
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	n := New(d, DefaultConfig(), rng.New(5))
	src := d.RouterAt(3, 1, 0)
	dst := d.RouterAt(3, 1, 4)
	ls := n.BuildLoadSet([]Flow{{Src: src, Dst: dst, Flits: 1e9, Packets: 1e5, RequestFraction: 0.9}})

	before := n.Board.Snapshot()
	n.RunRound(nil, []ScaledLoad{{Set: ls, Scale: 1}}, 1.0)
	delta := n.Board.DeltaSum(before, []topology.RouterID{src, dst})
	if delta[counters.RTFlitTot] <= 0 {
		t.Fatal("background traffic left no RT flit counters")
	}
	if delta[counters.PTFlitTot] <= 0 {
		t.Fatal("background traffic left no PT flit counters")
	}
	// VC0 arrivals at dst reflect the request fraction
	dd := n.Board.DeltaSum(before, []topology.RouterID{dst})
	if math.Abs(dd[counters.PTFlitVC0]-0.9e9) > 1e6 {
		t.Fatalf("background VC0 arrivals = %v, want 9e8", dd[counters.PTFlitVC0])
	}
}

func TestScaledLoadZeroOrNilIgnored(t *testing.T) {
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	n := New(d, DefaultConfig(), rng.New(5))
	fg := []Flow{{Src: d.RouterAt(0, 1, 0), Dst: d.RouterAt(0, 1, 3), Flits: 1e6, Packets: 100, RequestFraction: 1}}
	a := n.RunRound(fg, nil, 1.0)
	b := n.RunRound(fg, []ScaledLoad{{Set: nil, Scale: 1}, {Set: &LoadSet{}, Scale: 0}}, 1.0)
	if a.Slowdown[0] != b.Slowdown[0] {
		t.Fatal("nil/zero background should be a no-op")
	}
}
