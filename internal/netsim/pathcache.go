package netsim

import (
	"sync"

	"dragonvar/internal/routing"
)

// cacheKey identifies one path-cache epoch: a routing policy under one
// dead-link signature. Candidate paths are a pure function of (network
// seed, router pair, policy, dead-link set) — capacity derating without
// death never changes candidates (only dead links are avoided during
// resolution) — so caching per (policy, signature) makes fault-epoch
// invalidation edge-scoped: a health change that kills no links keeps the
// clean cache, and returning to a previously seen dead set reuses every
// path resolved under it.
type cacheKey struct {
	policy string
	sig    uint64 // deadSig of the fabric the paths were resolved under
}

// PathCache is a shared, concurrency-safe second-level candidate-path
// cache. Identically seeded Networks over the same machine and config (the
// campaign's per-worker simulators) compute byte-identical candidate sets
// for every (policy, dead-set, pair), so they can pool resolutions: each
// worker keeps its lock-free first-level map and falls back to the shared
// cache before paying for a recomputation (path sampling seeds a dedicated
// RNG stream per pair — the dominant cost of a miss).
//
// Sharing is only sound between Networks whose candidate resolution is
// bit-identical: same topology, same Config, and an RNG stream split from
// the same seed with the same label. Entries are immutable once stored and
// first-write-wins; since every writer stores the same value, the winner
// is irrelevant and determinism is preserved.
type PathCache struct {
	mu sync.RWMutex
	m  map[cacheKey]map[uint64][]routing.Path
}

// NewPathCache creates an empty shared path cache.
func NewPathCache() *PathCache {
	return &PathCache{m: make(map[cacheKey]map[uint64][]routing.Path)}
}

// lookup returns the cached candidate set for a pair under the given
// epoch, or nil.
func (c *PathCache) lookup(k cacheKey, pair uint64) ([]routing.Path, bool) {
	c.mu.RLock()
	p, ok := c.m[k][pair]
	c.mu.RUnlock()
	return p, ok
}

// store publishes a resolved candidate set; the first writer wins.
func (c *PathCache) store(k cacheKey, pair uint64, paths []routing.Path) {
	c.mu.Lock()
	epoch, ok := c.m[k]
	if !ok {
		epoch = make(map[uint64][]routing.Path)
		c.m[k] = epoch
	}
	if _, ok := epoch[pair]; !ok {
		epoch[pair] = paths
	}
	c.mu.Unlock()
}
