package netsim

import (
	"math"
	"testing"

	"dragonvar/internal/counters"
	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

func newNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	return New(d, cfg, rng.New(42))
}

func TestIdleFlowNoSlowdown(t *testing.T) {
	n := newNet(t, DefaultConfig())
	d := n.Topology()
	flows := []Flow{{
		Src: d.RouterAt(2, 0, 0), Dst: d.RouterAt(3, 1, 1),
		Flits: 1e6, Packets: 100, RequestFraction: 0.9,
	}}
	res := n.RunRound(flows, nil, 1.0)
	if res.Slowdown[0] < 1 {
		t.Fatalf("slowdown below 1: %v", res.Slowdown[0])
	}
	if res.Slowdown[0] > 1.01 {
		t.Fatalf("tiny flow on idle machine slowed by %v", res.Slowdown[0])
	}
}

func TestSelfFlowIsFree(t *testing.T) {
	n := newNet(t, DefaultConfig())
	d := n.Topology()
	r := d.RouterAt(1, 1, 1)
	res := n.RunRound([]Flow{{Src: r, Dst: r, Flits: 1e12, Packets: 1e9}}, nil, 1.0)
	if res.Slowdown[0] != 1 {
		t.Fatalf("self flow slowdown = %v", res.Slowdown[0])
	}
	if res.MaxLinkUtilization != 0 {
		t.Fatal("self flow should not touch links")
	}
}

func TestCountersAccumulateFlits(t *testing.T) {
	n := newNet(t, DefaultConfig())
	d := n.Topology()
	src := d.RouterAt(2, 1, 0)
	dst := d.RouterAt(2, 1, 3) // same row: single green link
	before := n.Board.Snapshot()
	n.RunRound([]Flow{{Src: src, Dst: dst, Flits: 1e6, Packets: 50, RequestFraction: 1}}, nil, 1.0)
	delta := n.Board.DeltaSum(before, []topology.RouterID{src, dst})
	if delta[counters.RTFlitTot] < 1e6*0.99 {
		t.Fatalf("RT_FLIT_TOT delta = %v, want ~1e6", delta[counters.RTFlitTot])
	}
	// all data flits arrive at the destination's processor tiles on VC0
	dd := n.Board.DeltaSum(before, []topology.RouterID{dst})
	if math.Abs(dd[counters.PTFlitVC0]-1e6) > 1 {
		t.Fatalf("PT_FLIT_VC0 at dst = %v, want 1e6", dd[counters.PTFlitVC0])
	}
	// acks arrive back at the source on VC4
	sd := n.Board.DeltaSum(before, []topology.RouterID{src})
	if sd[counters.PTFlitVC4] != 50 {
		t.Fatalf("PT_FLIT_VC4 at src = %v, want 50 acks", sd[counters.PTFlitVC4])
	}
}

func TestContentionSlowsFlows(t *testing.T) {
	cfg := DefaultConfig()
	n := newNet(t, cfg)
	d := n.Topology()
	src := d.RouterAt(2, 1, 0)
	dst := d.RouterAt(2, 1, 3)

	solo := []Flow{{Src: src, Dst: dst, Flits: 2e9, Packets: 1e5, RequestFraction: 1}}
	resSolo := n.RunRound(solo, nil, 1.0)

	// many heavy competitors over the same row
	crowd := append([]Flow{}, solo...)
	for c := 0; c < 6; c++ {
		crowd = append(crowd, Flow{
			Src: d.RouterAt(2, 1, 0), Dst: d.RouterAt(2, 1, 3),
			Flits: 3e9, Packets: 1e5, RequestFraction: 1,
		})
	}
	resCrowd := n.RunRound(crowd, nil, 1.0)
	if resCrowd.Slowdown[0] <= resSolo.Slowdown[0] {
		t.Fatalf("contention did not slow the flow: solo %v, crowded %v",
			resSolo.Slowdown[0], resCrowd.Slowdown[0])
	}
}

func TestStallCountersGrowWithCongestion(t *testing.T) {
	cfg := DefaultConfig()
	n := newNet(t, cfg)
	d := n.Topology()
	src := d.RouterAt(3, 0, 1)
	dst := d.RouterAt(3, 0, 4)

	before := n.Board.Snapshot()
	n.RunRound([]Flow{{Src: src, Dst: dst, Flits: 1e5, Packets: 10, RequestFraction: 1}}, nil, 1.0)
	lightStalls := n.Board.DeltaSum(before, []topology.RouterID{src, dst})[counters.RTRBStl]

	before = n.Board.Snapshot()
	var heavy []Flow
	for c := 0; c < 8; c++ {
		heavy = append(heavy, Flow{Src: src, Dst: dst, Flits: 2.5e9, Packets: 1e5, RequestFraction: 1})
	}
	n.RunRound(heavy, nil, 1.0)
	heavyStalls := n.Board.DeltaSum(before, []topology.RouterID{src, dst})[counters.RTRBStl]

	if heavyStalls <= lightStalls*100 {
		t.Fatalf("stalls did not grow superlinearly with load: light %v, heavy %v", lightStalls, heavyStalls)
	}
}

func TestSmallMessageTrafficHitsEndpointCounters(t *testing.T) {
	cfg := DefaultConfig()
	n := newNet(t, cfg)
	d := n.Topology()
	src := d.RouterAt(4, 1, 1)
	dst := d.RouterAt(5, 2, 2)

	// bandwidth-heavy: lots of flits, few packets
	before := n.Board.Snapshot()
	n.RunRound([]Flow{{Src: src, Dst: dst, Flits: 4e9, Packets: 1e4, RequestFraction: 1}}, nil, 1.0)
	bw := n.Board.DeltaSum(before, []topology.RouterID{src, dst})

	// message-rate-heavy: few flits, a flood of tiny packets
	before = n.Board.Snapshot()
	n.RunRound([]Flow{{Src: src, Dst: dst, Flits: 2e8, Packets: 2e8, RequestFraction: 1}}, nil, 1.0)
	msg := n.Board.DeltaSum(before, []topology.RouterID{src, dst})

	if msg[counters.PTRBStlRq] <= bw[counters.PTRBStlRq] {
		t.Fatalf("small-message traffic should stall request VCs more: bw=%v msg=%v",
			bw[counters.PTRBStlRq], msg[counters.PTRBStlRq])
	}
	if bw[counters.RTRBStl] <= msg[counters.RTRBStl] {
		t.Fatalf("bandwidth traffic should stall router tiles more: bw=%v msg=%v",
			bw[counters.RTRBStl], msg[counters.RTRBStl])
	}
}

func TestAdaptiveSpreadsLoad(t *testing.T) {
	mk := func(adaptive bool) float64 {
		cfg := DefaultConfig()
		cfg.Adaptive = adaptive
		d, err := topology.New(topology.Small())
		if err != nil {
			t.Fatal(err)
		}
		n := New(d, cfg, rng.New(7))
		src := d.RouterAt(0, 2, 1)
		dst := d.RouterAt(6, 3, 4)
		var flows []Flow
		for c := 0; c < 10; c++ {
			flows = append(flows, Flow{Src: src, Dst: dst, Flits: 2e9, Packets: 1e5, RequestFraction: 1})
		}
		return n.RunRound(flows, nil, 1.0).MaxLinkUtilization
	}
	minimalOnly := mk(false)
	adaptive := mk(true)
	if adaptive >= minimalOnly {
		t.Fatalf("adaptive routing should lower peak utilization: adaptive %v, minimal %v",
			adaptive, minimalOnly)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		d, err := topology.New(topology.Small())
		if err != nil {
			t.Fatal(err)
		}
		n := New(d, DefaultConfig(), rng.New(1234))
		flows := []Flow{
			{Src: d.RouterAt(0, 0, 1), Dst: d.RouterAt(3, 2, 2), Flits: 1e9, Packets: 1e5, RequestFraction: 0.8},
			{Src: d.RouterAt(1, 1, 1), Dst: d.RouterAt(3, 2, 2), Flits: 2e9, Packets: 2e5, RequestFraction: 0.5},
		}
		return n.RunRound(flows, nil, 1.0)
	}
	a, b := run(), run()
	for i := range a.Slowdown {
		if a.Slowdown[i] != b.Slowdown[i] {
			t.Fatalf("nondeterministic slowdown: %v vs %v", a.Slowdown[i], b.Slowdown[i])
		}
	}
	if a.MaxLinkUtilization != b.MaxLinkUtilization {
		t.Fatal("nondeterministic utilization")
	}
}

func TestCountersMonotonic(t *testing.T) {
	n := newNet(t, DefaultConfig())
	d := n.Topology()
	flows := []Flow{{Src: d.RouterAt(0, 1, 1), Dst: d.RouterAt(2, 2, 2), Flits: 1e9, Packets: 1e5, RequestFraction: 1}}
	var prev counters.RouterCounters
	zero := counters.NewBoard(d.Cfg.NumRouters())
	all := make([]topology.RouterID, d.Cfg.NumRouters())
	for i := range all {
		all[i] = topology.RouterID(i)
	}
	for round := 0; round < 5; round++ {
		n.RunRound(flows, nil, 1.0)
		cur := n.Board.DeltaSum(zero, all)
		for c := 0; c < counters.NumJob; c++ {
			if cur[c] < prev[c] {
				t.Fatalf("counter %v decreased: %v -> %v", counters.Index(c), prev[c], cur[c])
			}
		}
		prev = cur
	}
}

func TestQueueDelayProperties(t *testing.T) {
	if queueDelay(0) != 0 {
		t.Fatal("idle link should have zero delay")
	}
	if queueDelay(-1) != 0 {
		t.Fatal("negative utilization should clamp to zero delay")
	}
	// monotone increasing
	prev := 0.0
	for u := 0.05; u < 3.0; u += 0.05 {
		d := queueDelay(u)
		if d < prev {
			t.Fatalf("queueDelay not monotone at u=%v", u)
		}
		if math.IsInf(d, 0) || math.IsNaN(d) {
			t.Fatalf("queueDelay unbounded at u=%v", u)
		}
		prev = d
	}
	// convex enough: delay at 0.9 should far exceed 2x delay at 0.45
	if queueDelay(0.9) < 2*queueDelay(0.45)*2 {
		t.Fatal("queueDelay not convex enough to punish overload")
	}
}

func TestZeroDurationDefaults(t *testing.T) {
	n := newNet(t, DefaultConfig())
	d := n.Topology()
	// must not panic or divide by zero
	res := n.RunRound([]Flow{{Src: d.RouterAt(0, 0, 1), Dst: d.RouterAt(1, 0, 1), Flits: 1e6, Packets: 10, RequestFraction: 1}}, nil, 0)
	if math.IsNaN(res.Slowdown[0]) || res.Slowdown[0] < 1 {
		t.Fatalf("bad slowdown with zero duration: %v", res.Slowdown[0])
	}
}

func TestResetCache(t *testing.T) {
	n := newNet(t, DefaultConfig())
	d := n.Topology()
	n.RunRound([]Flow{{Src: d.RouterAt(0, 0, 1), Dst: d.RouterAt(1, 0, 1), Flits: 1e6, Packets: 10, RequestFraction: 1}}, nil, 1)
	if len(n.pathCache) == 0 {
		t.Fatal("cache should be populated after a round")
	}
	n.ResetCache()
	if len(n.pathCache) != 0 {
		t.Fatal("ResetCache should empty the cache")
	}
}

func TestFarTrafficDoesNotStallLocalCounters(t *testing.T) {
	// A job in groups 7..8 should see (almost) no counter activity from
	// traffic contained in groups 0..1: that is what makes per-job counter
	// collection informative.
	n := newNet(t, DefaultConfig())
	d := n.Topology()
	mine := []topology.RouterID{d.RouterAt(7, 2, 2), d.RouterAt(8, 1, 1)}
	before := n.Board.Snapshot()
	var flows []Flow
	for c := 0; c < 6; c++ {
		flows = append(flows, Flow{Src: d.RouterAt(0, 1, 1), Dst: d.RouterAt(1, 2, 2), Flits: 3e9, Packets: 1e5, RequestFraction: 1})
	}
	n.RunRound(flows, nil, 1.0)
	delta := n.Board.DeltaSum(before, mine)
	// Valiant detours may leak a little traffic through other groups, but
	// the bulk must stay off our routers.
	if delta[counters.RTFlitTot] > 6*3e9*0.05 {
		t.Fatalf("distant traffic leaked %v flits onto local routers", delta[counters.RTFlitTot])
	}
}
