// Package cluster ties the machine together: it builds the dragonfly
// network, generates the production background (package slurm), schedules
// the controlled experiments of §III (1–2 jobs per application per node
// count per day, submitted under User-8), simulates every run step by step
// against the concurrently running jobs, and records the datasets — per-step
// execution times, AriesNCL counter deltas for the job's own routers,
// LDMS-style io/sys features, placement features, and the run neighborhood.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"dragonvar/internal/apps"
	"dragonvar/internal/counters"
	"dragonvar/internal/dataset"
	"dragonvar/internal/engine"
	"dragonvar/internal/faults"
	"dragonvar/internal/monitor"
	"dragonvar/internal/mpi"
	"dragonvar/internal/netsim"
	"dragonvar/internal/rng"
	"dragonvar/internal/routing"
	"dragonvar/internal/slurm"
	"dragonvar/internal/telemetry"
	"dragonvar/internal/topology"
)

// Environment variables the CLI layer consults for policy defaults, the
// same convention as engine.EnvWorkers. Resolved by the CLIs only — never
// inside withDefaults, so a distributed worker with a different
// environment cannot silently diverge from its coordinator.
const (
	EnvRouting   = "DRAGONVAR_ROUTING"
	EnvPlacement = "DRAGONVAR_PLACEMENT"
)

// Config parameterizes a campaign.
type Config struct {
	Machine topology.Config // defaults to topology.Cori()
	Net     netsim.Config   // defaults to netsim.DefaultConfig()
	Days    float64         // campaign length; the paper ran ~130 days
	Seed    int64
	Models  []*apps.Model // defaults to apps.Registry()
	Users   []*slurm.User // defaults to slurm.Roster()

	// MeanRunsPerDay is the per-dataset submission rate (paper: 1–2/day).
	MeanRunsPerDay float64
	// CounterNoise is the relative measurement noise applied to recorded
	// counter deltas. Default 0.04: per-step counter reads are noisy
	// estimates of congestion, so longer histories (larger m) average
	// toward the true level — the §V-C temporal-context effect.
	CounterNoise float64
	// FaultSpec is a faults.Parse spec string ("links=3,dropouts=2", ...).
	// Empty means a perfect machine. The schedule is derived
	// deterministically from Seed, so a faulted campaign reproduces.
	FaultSpec string
	// Placement names the placement policy deciding where jobs land
	// ("firstfit", "compact", "interference" — see
	// slurm.PlacementPolicyNames). Empty means "firstfit", the historical
	// behavior. Like Net.Routing it is part of the campaign's cache
	// identity.
	Placement string
	// BlamedUsers is the advisor's blame list (advisor.Advisor.Blamed):
	// background users whose presence predicts interference. Only the
	// "interference" placement policy reads it — jobs of blamed users
	// weigh double in the expected-load view placements avoid.
	BlamedUsers []string
	// Workers is the number of runs simulated concurrently by RunCampaign
	// (0 means engine.Workers: $DRAGONVAR_WORKERS or GOMAXPROCS). Every
	// worker count produces byte-identical campaigns; Workers only changes
	// wall-clock time.
	Workers int
	// Progress, when non-nil, receives (completed, total) after each run.
	Progress func(done, total int)
	// Monitor, when non-nil, receives every simulated round's per-router
	// counter deltas (and dropout markers) as they are produced — the live
	// feed of the streaming monitor (internal/monitor implements this).
	// Strictly observation-only: the campaign result is byte-identical
	// with or without a monitor attached. In a parallel campaign the
	// observer is called concurrently from worker goroutines, and rounds
	// of different runs interleave out of time order — implementations
	// must lock, and must not infer sampler gaps from timestamp jumps.
	Monitor RoundObserver
	// OnRunMerged, when non-nil, receives every completed run during the
	// serial merge phase, in deterministic (round, plan) order, with
	// RunID and Requeues already final — the streaming ingest feed of the
	// retraining daemon (internal/daemon). Called from the single merge
	// goroutine, never concurrently. Strictly observation-only like
	// Monitor: the campaign result is byte-identical with or without the
	// hook, and the *Run is the campaign's own object (treat as
	// read-only).
	OnRunMerged func(run *dataset.Run)
}

// RoundObserver is the live monitoring hook of a campaign. ObserveRound
// receives one round's per-router counter deltas over dt seconds, laid out
// router-major with LDMSSeriesPerRouter series per router (the layout of
// counters.Board.DeltaInto with the LDMS source list); the slice is scratch
// reused between calls, so implementations must copy what they keep.
// ObserveMissing reports a round whose counter reads fell in a sampler
// dropout window.
type RoundObserver interface {
	ObserveRound(t, dt float64, deltas []float64)
	ObserveMissing(t float64)
}

func (c Config) withDefaults() Config {
	if c.Machine.Groups == 0 {
		c.Machine = topology.Cori()
	}
	if c.Net.LinkBandwidth == 0 {
		// a policy choice rides along even when the physical constants
		// default (the CLIs set only Net.Routing)
		rt, bias := c.Net.Routing, c.Net.NonMinimalBias
		c.Net = netsim.DefaultConfig()
		c.Net.Routing, c.Net.NonMinimalBias = rt, bias
	}
	if c.Placement == "" {
		c.Placement = "firstfit"
	}
	if c.Days <= 0 {
		c.Days = 130
	}
	if c.Models == nil {
		c.Models = apps.Registry()
	}
	if c.Users == nil {
		c.Users = slurm.Roster()
	}
	if c.MeanRunsPerDay <= 0 {
		c.MeanRunsPerDay = 1.65
	}
	if c.CounterNoise == 0 {
		c.CounterNoise = 0.04
	}
	return c
}

// EffectivePolicies returns the routing and placement policy names the
// campaign will run under after defaulting — the values recorded in the
// campaign's cache identity (dataset.Campaign.Routing / .Placement).
func (c Config) EffectivePolicies() (routingPolicy, placementPolicy string) {
	c = c.withDefaults()
	return c.Net.PolicyName(), c.Placement
}

// Cluster is a wired machine with its background workload, ready to run
// controlled experiments.
type Cluster struct {
	cfg      Config
	Topo     *topology.Dragonfly
	Net      *netsim.Network
	Timeline *slurm.Timeline
	// Faults is the campaign's fault schedule; nil for a perfect machine.
	Faults *faults.Schedule

	root     *rng.Stream
	curEpoch int // fault epoch currently applied to Net

	// pathCache is the campaign-wide shared candidate-path cache. Every
	// network of this cluster (Net and the per-worker networks) is split
	// from the same root with the same label, so their candidate
	// resolution is bit-identical and they can safely pool resolved
	// paths: a pair any of them resolves is resolved once per
	// (policy, dead-set) epoch for the whole campaign instead of once
	// per worker.
	pathCache *netsim.PathCache

	// placer decides where controlled runs land; blamed is the advisor
	// blame list as a set (read only by the interference-aware policy).
	placer slurm.PlacementPolicy
	blamed map[string]bool

	tm clusterMetrics
}

// clusterMetrics bundles the campaign driver's telemetry handles, captured
// once in New. All handles are nil (no-op) when telemetry is disabled, and
// observation-only either way: no simulation decision reads them.
type clusterMetrics struct {
	runs        *telemetry.Counter
	drained     *telemetry.Counter
	requeues    *telemetry.Counter
	abandoned   *telemetry.Counter
	rounds      *telemetry.Counter
	runSecs     *telemetry.Histogram
	mergeSecs   *telemetry.Histogram
	ldms        *telemetry.Counter
	placements  *telemetry.Counter
	placeNodes  *telemetry.Histogram
	placeGroups *telemetry.Histogram
}

func newClusterMetrics() clusterMetrics {
	return clusterMetrics{
		runs:        telemetry.C(telemetry.MClusterRuns),
		drained:     telemetry.C(telemetry.MClusterDrained),
		requeues:    telemetry.C(telemetry.MClusterRequeues),
		abandoned:   telemetry.C(telemetry.MClusterAbandoned),
		rounds:      telemetry.C(telemetry.MClusterRounds),
		runSecs:     telemetry.H(telemetry.MClusterRunSecs, telemetry.SecondsBuckets),
		mergeSecs:   telemetry.H(telemetry.MClusterMergeSecs, telemetry.SecondsBuckets),
		ldms:        telemetry.C(telemetry.MLDMSSamples),
		placements:  telemetry.C(telemetry.MSlurmPlacements),
		placeNodes:  telemetry.H(telemetry.MSlurmPlacementNodes, telemetry.CountBuckets),
		placeGroups: telemetry.H(telemetry.MSlurmPlacementGroups, telemetry.CountBuckets),
	}
}

// New builds the machine, derives the fault schedule, and generates the
// (fault-aware) background timeline.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	topo, err := topology.New(cfg.Machine)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	sched, err := faults.Parse(cfg.FaultSpec, topo, cfg.Days*86400, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if sched == nil {
		// "none" and "" both mean a perfect machine; normalize so the
		// campaign's cache identity doesn't depend on the spelling
		cfg.FaultSpec = ""
	}
	if !routing.ValidPolicy(cfg.Net.PolicyName()) {
		return nil, fmt.Errorf("cluster: unknown routing policy %q (have %v)", cfg.Net.PolicyName(), routing.PolicyNames())
	}
	placer, err := slurm.NewPlacementPolicy(cfg.Placement)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	var blamed map[string]bool
	if len(cfg.BlamedUsers) > 0 {
		blamed = make(map[string]bool, len(cfg.BlamedUsers))
		for _, u := range cfg.BlamedUsers {
			blamed[u] = true
		}
	}
	root := rng.New(cfg.Seed)
	shared := netsim.NewPathCache()
	net := netsim.New(topo, cfg.Net, root.Split("netsim"))
	net.SharePathCache(shared)
	tl := slurm.Generate(net, slurm.GenerateConfig{Days: cfg.Days, Users: cfg.Users, Faults: sched, Workers: cfg.Workers},
		root.Split("timeline"))
	return &Cluster{cfg: cfg, Topo: topo, Net: net, Timeline: tl, Faults: sched, root: root, curEpoch: -1,
		pathCache: shared, placer: placer, blamed: blamed, tm: newClusterMetrics()}, nil
}

// applyFaultsTo derates net to the fault state at time t, tracking the
// currently applied epoch in *curEpoch. Returns true when the fault epoch
// changed (cached routes are then stale and the caller must re-resolve).
// The resulting network state depends only on t's epoch, never on the
// sequence of epochs applied before — which is what lets independently
// seeded per-worker networks visit runs in any order.
func (c *Cluster) applyFaultsTo(net *netsim.Network, curEpoch *int, t float64) bool {
	if c.Faults == nil {
		return false
	}
	e := c.Faults.Epoch(t)
	if e == *curEpoch {
		return false
	}
	*curEpoch = e
	v := c.Faults.ViewAt(t)
	if v.Clean() {
		net.SetLinkHealth(nil)
	} else {
		net.SetLinkHealth(v.LinkFactor)
	}
	return true
}

// applyFaultsAt derates the cluster's shared network (used by the LDMS
// replay) to the fault state at time t.
func (c *Cluster) applyFaultsAt(t float64) bool {
	return c.applyFaultsTo(c.Net, &c.curEpoch, t)
}

// simWorker is the per-worker simulation context of a parallel campaign.
// Each worker owns a private Network split from the same root with the same
// label, so all workers' networks are identically seeded; combined with
// per-pair path sampling (netsim) and a counter-board reset before every
// run, a run's result depends only on its plan — not on which worker
// simulates it or what that worker simulated before.
type simWorker struct {
	c          *Cluster
	net        *netsim.Network
	curEpoch   int
	sysRouters []topology.RouterID // scratch, reused per run
	mineMask   []bool              // scratch: the run's own-router set
	before     *counters.Board     // scratch snapshot, reused per step
	monDeltas  []float64           // scratch for the Monitor feed; nil when unmonitored
}

func (c *Cluster) newSimWorker() *simWorker {
	w := &simWorker{
		c:        c,
		net:      netsim.New(c.Topo, c.cfg.Net, c.root.Split("netsim")),
		curEpoch: -1,
		mineMask: make([]bool, c.Topo.Cfg.NumRouters()),
		before:   counters.NewBoard(c.Topo.Cfg.NumRouters()),
	}
	// workers pool resolved candidate paths (identically seeded networks)
	// and consume each round's slowdowns before the next, so the shared
	// cache and the reused slowdown buffer are both safe
	w.net.SharePathCache(c.pathCache)
	w.net.ReuseSlowdowns(true)
	if c.cfg.Monitor != nil {
		w.monDeltas = make([]float64, c.Topo.Cfg.NumRouters()*LDMSSeriesPerRouter)
	}
	return w
}

// drainError aborts a simulated run whose nodes were lost to a drain,
// router failure, or partition at campaign time at.
type drainError struct{ at float64 }

func (e drainError) Error() string {
	return fmt.Sprintf("cluster: nodes lost to a fault at t=%v", e.at)
}

// requeueLimit bounds how many times one controlled run is requeued after
// losing its nodes to a fault.
const requeueLimit = 3

// plan is one scheduled controlled run.
type plan struct {
	model  *apps.Model
	day    int
	start  float64
	estEnd float64
	nodes  []topology.NodeID
	// approximate unit footprint (flits/s) used when this run appears in
	// the background of another of our runs
	footprint *netsim.LoadSet
	// pat is the placement's prebuilt traffic pattern (apps.BuildPattern),
	// shared by the footprint estimate and the run simulation — pattern
	// expansion is deterministic given the node list, so it is built once
	// per placement instead of once per consumer. Reset whenever nodes
	// change (requeue). Written by the plan's owning worker or the serial
	// driver, never read across plans, so no locking is needed.
	pat *apps.BuiltPattern
	// requeues counts how often this submission lost its nodes to a fault
	// and was resubmitted
	requeues int
}

// planPattern returns the plan's traffic pattern, building and caching it
// on first use.
func (c *Cluster) planPattern(p *plan) (*apps.BuiltPattern, error) {
	if p.pat == nil {
		bp, err := p.model.BuildPattern(c.Topo, p.nodes)
		if err != nil {
			return nil, err
		}
		p.pat = bp
	}
	return p.pat, nil
}

// UnitOutcome is the result of executing one work unit (one plan index):
// either a completed run, or a drain marker saying the run lost its nodes
// to a fault at DrainAt (the requeue decision is the campaign driver's, not
// the executor's). The zero value means "never executed" — the driver
// skips it, which only happens on cancellation.
type UnitOutcome struct {
	Run     *dataset.Run
	Drained bool
	DrainAt float64
}

// PlanOverride captures the mutable state of a requeued plan — the new
// submission window, the new allocation, and the requeue count — so a
// remote process holding the same deterministic schedule can reproduce the
// campaign driver's plan list exactly. Overrides accumulate monotonically
// over a campaign; Requeues orders overrides for the same unit.
type PlanOverride struct {
	Unit     int               `json:"unit"`
	Start    float64           `json:"start"`
	EstEnd   float64           `json:"est_end"`
	Nodes    []topology.NodeID `json:"nodes"`
	Requeues int               `json:"requeues"`
}

// UnitExecutor simulates one campaign round. ExecuteRound must return one
// outcome per entry of pending (outs[k] belongs to pending[k]); overrides
// is the accumulated requeue state remote executors need to mirror the
// driver's plan list (the in-process executor ignores it — its plans are
// the driver's); completed is the thread-safe progress tick to call once
// per successfully simulated unit. On error the partial outcome slice is
// still honored: units with a non-zero outcome are merged.
//
// The campaign driver calls ExecuteRound serially — rounds are barriers —
// so an implementation never sees two rounds in flight.
type UnitExecutor interface {
	ExecuteRound(ctx context.Context, pending []int, overrides []PlanOverride, completed func()) ([]UnitOutcome, error)
}

// localExecutor is the in-process UnitExecutor: pending units are sharded
// across a bounded pool of simulation workers via the engine.
type localExecutor struct {
	c     *Cluster
	plans []*plan
	sws   []*simWorker
}

func (e *localExecutor) ExecuteRound(ctx context.Context, pending []int, _ []PlanOverride, completed func()) ([]UnitOutcome, error) {
	c := e.c
	outs := make([]UnitOutcome, len(pending))
	// runs are milliseconds each, so batch the handout into super-units;
	// results depend only on the unit index, never on the batching
	batch := engine.Batch(len(pending), len(e.sws))
	err := engine.MapBatch(ctx, len(e.sws), len(pending), batch, func(_ context.Context, wkr, k int) error {
		if e.sws[wkr] == nil {
			e.sws[wkr] = c.newSimWorker()
		}
		i := pending[k]
		simStart := time.Now()
		run, err := e.sws[wkr].simulate(e.plans[i], e.plans, i)
		c.tm.runSecs.ObserveSince(simStart)
		var de drainError
		if errors.As(err, &de) {
			c.tm.drained.Add(1)
			outs[k] = UnitOutcome{Drained: true, DrainAt: de.at}
			return nil
		}
		if err != nil {
			return err
		}
		c.tm.runs.Add(1)
		outs[k] = UnitOutcome{Run: run}
		completed()
		return nil
	})
	return outs, err
}

// RunCampaign schedules and simulates the full controlled experiment
// campaign and returns the datasets.
func (c *Cluster) RunCampaign() (*dataset.Campaign, error) {
	return c.RunCampaignCtx(context.Background())
}

// RunCampaignCtx is RunCampaign with cancellation: runs are sharded across
// cfg.Workers simulation workers, and on context cancellation the campaign
// returns early with Partial set alongside ctx's error, carrying every run
// that completed before the cancel (so callers can flush a usable partial
// dataset instead of losing the work).
//
// Execution proceeds in rounds: all pending runs are simulated in parallel
// against a frozen plan list, then — serially, in plan order — runs that
// lost their nodes to a fault are requeued with a deterministic backoff,
// like slurm --requeue would, and the next round simulates only those.
// Plans are never mutated while a round is in flight, so every worker count
// produces byte-identical campaigns.
func (c *Cluster) RunCampaignCtx(ctx context.Context) (*dataset.Campaign, error) {
	workers := engine.Workers(c.cfg.Workers)
	return c.runCampaign(ctx, func(plans []*plan) UnitExecutor {
		return &localExecutor{c: c, plans: plans, sws: make([]*simWorker, workers)}
	})
}

// RunCampaignWith runs the campaign through an external unit executor —
// the entry point of the distributed layer (internal/dist): the campaign
// driver (scheduling, round barriers, requeue decisions, deterministic
// merge) stays in this process while exec ships units elsewhere. Because
// units are merged in plan order and requeue decisions are made serially
// from unit outcomes alone, any executor that returns correct outcomes
// yields a campaign byte-identical to RunCampaignCtx.
func (c *Cluster) RunCampaignWith(ctx context.Context, exec UnitExecutor) (*dataset.Campaign, error) {
	return c.runCampaign(ctx, func([]*plan) UnitExecutor { return exec })
}

func (c *Cluster) runCampaign(ctx context.Context, mkExec func(plans []*plan) UnitExecutor) (*dataset.Campaign, error) {
	cfg := c.cfg
	ctx, campSpan := telemetry.Start(ctx, telemetry.SpanCampaign)
	defer campSpan.End()
	_, schedSpan := telemetry.Start(ctx, telemetry.SpanCampaignSchedule)
	plans, err := c.schedule()
	schedSpan.End()
	if err != nil {
		return nil, err
	}
	exec := mkExec(plans)

	camp := &dataset.Campaign{
		Seed: cfg.Seed, Days: cfg.Days, Faults: cfg.FaultSpec,
		Routing: cfg.Net.PolicyName(), Placement: cfg.Placement,
	}
	byName := map[string]*dataset.Dataset{}
	for _, m := range cfg.Models {
		ds := &dataset.Dataset{Name: m.Name(), App: m.App.String(), Nodes: m.Nodes}
		byName[m.Name()] = ds
		camp.Datasets = append(camp.Datasets, ds)
	}

	results := make([]*dataset.Run, len(plans))
	var mu sync.Mutex
	done := 0
	progress := func() {
		if cfg.Progress == nil {
			return
		}
		mu.Lock()
		done++
		cfg.Progress(done, len(plans))
		mu.Unlock()
	}

	var overrides []PlanOverride
	pending := make([]int, len(plans))
	for i := range pending {
		pending[i] = i
	}
	var runErr error
	for len(pending) > 0 && runErr == nil {
		roundCtx, roundSpan := telemetry.Start(ctx, telemetry.SpanCampaignRound)
		c.tm.rounds.Add(1)
		// the round-span context travels into the executor so a distributed
		// executor can parent per-unit lease spans under the round
		outs, roundErr := exec.ExecuteRound(roundCtx, pending, overrides, progress)
		if len(outs) < len(pending) {
			// a misbehaving executor returned a short slice; treat the
			// missing tail as never-executed
			outs = append(outs, make([]UnitOutcome, len(pending)-len(outs))...)
		}

		// merge the round and decide requeues serially, in plan order
		mergeStart := time.Now()
		var next []int
		for k, i := range pending {
			o := outs[k]
			if o.Run != nil {
				results[i] = o.Run
				if cfg.OnRunMerged != nil {
					// stamp the identity fields now (the fixup loop below
					// re-derives the same values) so the hook observes the
					// run exactly as the final campaign will carry it
					o.Run.RunID = i
					o.Run.Requeues = plans[i].requeues
					cfg.OnRunMerged(o.Run)
				}
				continue
			}
			if roundErr != nil || !o.Drained {
				continue // cancelled before this run executed
			}
			// the run lost its nodes mid-flight; requeue the submission
			// after a deterministic backoff, like slurm --requeue would
			p := plans[i]
			if p.requeues < requeueLimit {
				p.requeues++
				rs := c.root.Split(fmt.Sprintf("requeue-%d-%d", i, p.requeues))
				est := p.estEnd - p.start
				p.start = o.DrainAt + 900*math.Pow(2, float64(p.requeues-1))
				p.estEnd = p.start + est
				p.nodes = nil
				p.pat = nil // pattern follows the placement
				if c.place(p, plans, i, rs) {
					p.footprint = c.planFootprint(p)
					c.tm.requeues.Add(1)
					overrides = append(overrides, PlanOverride{
						Unit:     i,
						Start:    p.start,
						EstEnd:   p.estEnd,
						Nodes:    append([]topology.NodeID(nil), p.nodes...),
						Requeues: p.requeues,
					})
					next = append(next, i) // retry at the new slot next round
					continue
				}
			}
			// gave up: the submission never completes and records no run
			c.tm.abandoned.Add(1)
			progress()
		}
		c.tm.mergeSecs.ObserveSince(mergeStart)
		roundSpan.End()
		pending = next
		runErr = roundErr
	}

	for i, run := range results {
		if run == nil {
			continue
		}
		run.RunID = i
		run.Requeues = plans[i].requeues
		byName[plans[i].model.Name()].Runs = append(byName[plans[i].model.Name()].Runs, run)
	}
	if runErr != nil {
		camp.Partial = true
		return camp, runErr
	}
	return camp, nil
}

// schedule decides submission times and placements for every controlled
// run, avoiding both background jobs and our own overlapping runs.
func (c *Cluster) schedule() ([]*plan, error) {
	cfg := c.cfg
	s := c.root.Split("schedule")
	var plans []*plan
	for day := 0; day < int(cfg.Days); day++ {
		for _, m := range cfg.Models {
			count := 1
			if s.Float64() < cfg.MeanRunsPerDay-1 {
				count = 2
			}
			for i := 0; i < count; i++ {
				// submissions go out in daily batches (the paper submitted
				// from a script), so controlled runs naturally cluster and
				// sometimes overlap each other — the User-8 effect
				batch := []float64{9 * 3600, 15 * 3600}
				submit := float64(day)*86400 + batch[s.Intn(len(batch))] + s.Uniform(0, 1800)
				wait := s.Exp(3600) // queue wait decided by the scheduler
				start := submit + wait
				est := m.TotalBaseTime() * 1.8
				if start+est > c.Timeline.Horizon() {
					continue
				}
				plans = append(plans, &plan{model: m, day: day, start: start, estEnd: start + est})
			}
		}
	}
	sort.Slice(plans, func(i, j int) bool { return plans[i].start < plans[j].start })

	// place in start order; when the machine is full, the job waits in the
	// queue and retries later (like a real submission would)
	for i, p := range plans {
		if !c.place(p, plans, i, s) {
			continue // gave up on this submission
		}
		p.footprint = c.planFootprint(p)
	}
	// drop unplaced plans
	placed := plans[:0]
	for _, p := range plans {
		if p.nodes != nil {
			placed = append(placed, p)
		}
	}
	return placed, nil
}

// place allocates nodes for one controlled run, avoiding background jobs,
// other controlled runs, Haswell nodes, and currently drained nodes. When
// the machine is full the submission waits in the queue and retries; false
// means it gave up (or ran off the end of the campaign). Sets p.nodes.
func (c *Cluster) place(p *plan, plans []*plan, self int, s *rng.Stream) bool {
	est := p.estEnd - p.start
	haswell := c.Topo.ComputeNodes(topology.Haswell)
	for try := 0; try < 6; try++ {
		if p.estEnd > c.Timeline.Horizon() {
			return false
		}
		busy := c.Timeline.BusyNodesAt(p.start, p.estEnd)
		// our jobs run on KNL nodes only (§II-A)
		for _, n := range haswell {
			busy[n] = true
		}
		// the scheduler sees the drain list at submission time but cannot
		// foresee future drains — those still kill runs mid-flight
		for n := range c.Faults.DrainedNodes(p.start) {
			busy[n] = true
		}
		for j, q := range plans {
			if j != self && q.nodes != nil && q.start < p.estEnd && q.estEnd > p.start {
				for _, n := range q.nodes {
					busy[n] = true
				}
			}
		}
		alloc := slurm.NewAllocator(c.Topo)
		compact := s.Uniform(0.05, 0.95)
		advise := func() *slurm.PlacementAdvice { return c.placementAdvice(p, plans, self) }
		p.nodes = c.placer.Place(alloc, p.model.Nodes, compact, busy, advise, s)
		if p.nodes != nil {
			c.tm.placements.Add(1)
			_, ng := slurm.PlacementFeatures(c.Topo, p.nodes)
			c.tm.placeNodes.Observe(float64(len(p.nodes)))
			c.tm.placeGroups.Observe(float64(ng))
			return true
		}
		p.start += s.Uniform(1800, 7200)
		p.estEnd = p.start + est
	}
	return false
}

// placementAdvice builds the deterministic congestion view the
// interference-aware placement policy consults: expected per-group load
// over the plan's window from the background timeline (advisor-blamed
// users' jobs weigh double) plus our own overlapping runs' footprints,
// with the monitor's cross-sectional hot-spot criterion flagging outlier
// groups. Everything derives from schedule state — the live monitor feed
// is observation-only by contract and is never read here.
func (c *Cluster) placementAdvice(p *plan, plans []*plan, self int) *slurm.PlacementAdvice {
	adv := &slurm.PlacementAdvice{GroupLoad: make([]float64, c.Topo.Cfg.Groups)}
	addSet := func(set *netsim.LoadSet, w float64) {
		if set == nil {
			return
		}
		for i, r := range set.RouterIDs {
			adv.GroupLoad[c.Topo.Group(r)] += (set.InjFlits[i] + set.EjFlits[i]) * w
		}
	}
	for _, j := range c.Timeline.Overlapping(p.start, p.estEnd) {
		w := 1.0
		if c.blamed[j.User.Name()] {
			w = 2
			adv.BlamedActive = true
		}
		addSet(j.Load, w)
	}
	for i, q := range plans {
		if i != self && q.nodes != nil && q.start < p.estEnd && q.estEnd > p.start {
			addSet(q.footprint, 1)
		}
	}
	// hotZ 1.5: with ~10 groups a full 3-sigma outlier (the monitor's
	// per-router default) almost never appears in a cross-section this
	// small; 1.5 flags the clearly-loaded tail without emptying the pool
	if hot := monitor.CrossSectionHot(adv.GroupLoad, 1.5); len(hot) > 0 {
		adv.HotGroups = make(map[topology.GroupID]bool, len(hot))
		for _, g := range hot {
			adv.HotGroups[topology.GroupID(g)] = true
		}
	}
	return adv
}

// planFootprint builds the unit (per-second) footprint used when this run
// is background for another of our runs.
func (c *Cluster) planFootprint(p *plan) *netsim.LoadSet {
	bp, err := c.planPattern(p)
	if err != nil {
		return nil
	}
	inst := p.model.InstantiateWith(bp, rng.New(1))
	// average step volume over the run, converted to per-second rates
	total := p.model.TotalBaseTime()
	var flows []netsim.Flow
	flows = inst.StepFlows(p.model.Steps/2, flows)
	scale := 1.0
	if total > 0 {
		scale = float64(p.model.Steps) / total // steps per second
	}
	for i := range flows {
		flows[i].Flits *= scale
		flows[i].Packets *= scale
	}
	return c.Net.BuildLoadSet(flows)
}

// simulate runs one controlled experiment step by step on this worker's
// private network. The board is reset first so the run's counter deltas are
// exact regardless of what the worker simulated before.
func (w *simWorker) simulate(p *plan, plans []*plan, self int) (*dataset.Run, error) {
	c := w.c
	cfg := c.cfg
	w.net.Board.Reset()
	w.net.ResetFeedback()
	runStream := c.root.Split(fmt.Sprintf("run-%d", self))
	bp, err := c.planPattern(p)
	if err != nil {
		return nil, err
	}
	// InstantiateWith consumes the same single draw Instantiate would, so
	// the run's noise trajectory is unchanged by the pattern reuse
	inst := p.model.InstantiateWith(bp, runStream.Split("inst"))
	mine := inst.Routers()
	nr, ng := slurm.PlacementFeatures(c.Topo, p.nodes)

	run := &dataset.Run{
		Dataset:    p.model.Name(),
		Start:      p.start,
		Day:        p.day,
		NumRouters: nr,
		NumGroups:  ng,
		StepTimes:  make([]float64, 0, p.model.Steps),
		Compute:    make([]float64, 0, p.model.Steps),
		Counters:   make([][counters.NumJob]float64, 0, p.model.Steps),
		IO:         make([][counters.NumLDMS]float64, 0, p.model.Steps),
		Sys:        make([][counters.NumLDMS]float64, 0, p.model.Steps),
		Missing:    make([]bool, 0, p.model.Steps),
	}

	// sys routers: every router not directly connected to our job
	for _, r := range mine {
		w.mineMask[r] = true
	}
	w.sysRouters = w.sysRouters[:0]
	for r := 0; r < c.Topo.Cfg.NumRouters(); r++ {
		if !w.mineMask[r] {
			w.sysRouters = append(w.sysRouters, topology.RouterID(r))
		}
	}
	for _, r := range mine {
		w.mineMask[r] = false
	}
	ioRouters := c.Topo.IORouters()

	// background candidates for the whole run window
	bgJobs := c.Timeline.Overlapping(p.start, p.estEnd)
	var ownBg []*plan
	for j, q := range plans {
		if j != self && q.nodes != nil && q.footprint != nil &&
			q.start < p.estEnd && q.estEnd > p.start {
			ownBg = append(ownBg, q)
		}
	}

	noise := runStream.Split("counter-noise")
	t := p.start
	var flows []netsim.Flow
	var scaled []netsim.ScaledLoad
	before := w.before
	// the flow pair list is fixed for the whole run; resolve routes once
	// per fault epoch (link failures invalidate cached candidate paths)
	c.applyFaultsTo(w.net, &w.curEpoch, t)
	flows = inst.StepFlows(0, flows[:0])
	routed, err := w.net.ResolveHealthy(flows)
	if err != nil {
		// our routers are partitioned off; the job cannot start here
		return nil, drainError{at: t}
	}
	for step := 0; step < p.model.Steps; step++ {
		dur := inst.StepDuration(step)
		if c.Faults != nil {
			// a drain or router failure on our nodes kills the run
			if tf, failed := c.Faults.FirstFailure(mine, t, t+dur); failed {
				return nil, drainError{at: tf}
			}
			if c.applyFaultsTo(w.net, &w.curEpoch, t) {
				// the pair list is identical across steps, so the stale
				// flows slice still has the right endpoints to re-resolve
				if routed, err = w.net.ResolveHealthy(flows); err != nil {
					return nil, drainError{at: t}
				}
			}
		}
		flows = inst.StepFlows(step, flows[:0])

		scaled = scaled[:0]
		for _, j := range bgJobs {
			if j.Overlaps(t, t+dur) {
				if sl := j.ScaledLoadAt(t, dur); sl.Scale > 0 {
					scaled = append(scaled, sl)
				}
			}
		}
		for _, q := range ownBg {
			if q.start < t+dur && q.estEnd > t {
				scaled = append(scaled, netsim.ScaledLoad{Set: q.footprint, Scale: dur})
			}
		}

		w.net.Board.SnapshotInto(before)
		res := w.net.RunRoundRouted(flows, routed, scaled, dur)

		// volume-weighted slowdown over our flows
		var wsum, wt float64
		for i, f := range flows {
			wsum += res.Slowdown[i] * f.Flits
			wt += f.Flits
		}
		slowdown := 1.0
		if wt > 0 {
			slowdown = wsum / wt
		}
		stepRes := inst.StepTime(step, slowdown, runStream)

		// record observations with measurement noise
		delta := w.net.Board.DeltaSum(before, mine)
		var rec [counters.NumJob]float64
		for ci := 0; ci < counters.NumJob; ci++ {
			rec[ci] = delta[ci] * (1 + cfg.CounterNoise*noise.NormFloat64())
		}
		io := w.net.Board.LDMSSample(before, ioRouters)
		sys := w.net.Board.LDMSSample(before, w.sysRouters)
		for i := range io {
			io[i] *= 1 + cfg.CounterNoise*noise.NormFloat64()
			sys[i] *= 1 + cfg.CounterNoise*noise.NormFloat64()
		}

		// a sampler dropout loses this step's observations — the run still
		// executed (step time is known from the job log), but the counter
		// read is explicitly missing, not zero
		missing := c.Faults.DropoutOverlaps(t, t+stepRes.Total)
		if missing {
			for ci := range rec {
				rec[ci] = counters.Missing()
			}
			for i := range io {
				io[i] = counters.Missing()
				sys[i] = counters.Missing()
			}
		}

		// live monitor feed: the round's raw (noise-free) per-router
		// deltas, or the dropout marker — observation-only by contract
		if mon := cfg.Monitor; mon != nil {
			if missing {
				mon.ObserveMissing(t)
			} else {
				w.net.Board.DeltaInto(before, ldmsSources[:], w.monDeltas)
				mon.ObserveRound(t, dur, w.monDeltas)
			}
		}

		run.StepTimes = append(run.StepTimes, stepRes.Total)
		run.Compute = append(run.Compute, stepRes.Compute)
		run.Counters = append(run.Counters, rec)
		run.IO = append(run.IO, io)
		run.Sys = append(run.Sys, sys)
		run.Missing = append(run.Missing, missing)
		run.Profile.Add(&stepRes.MPI)

		t += stepRes.Total
	}

	// neighborhood: background users plus our own overlapping runs (User-8)
	run.Neighbors = c.neighbors(p, plans, self, t)
	return run, nil
}

// neighbors lists every user with a job overlapping the run's actual
// execution window, with the largest overlapping job size.
func (c *Cluster) neighbors(p *plan, plans []*plan, self int, end float64) []dataset.NeighborJob {
	maxNodes := map[string]int{}
	for _, j := range c.Timeline.Overlapping(p.start, end) {
		name := j.User.Name()
		if len(j.Nodes) > maxNodes[name] {
			maxNodes[name] = len(j.Nodes)
		}
	}
	selfName := fmt.Sprintf("User-%d", slurm.SelfUserID)
	for j, q := range plans {
		if j == self || q.nodes == nil {
			continue
		}
		if q.start < end && q.estEnd > p.start {
			if len(q.nodes) > maxNodes[selfName] {
				maxNodes[selfName] = len(q.nodes)
			}
		}
	}
	var names []string
	for name := range maxNodes {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]dataset.NeighborJob, 0, len(names))
	for _, name := range names {
		out = append(out, dataset.NeighborJob{User: name, MaxNodes: maxNodes[name]})
	}
	return out
}

// SimulateAt simulates a single job of the given model (with an overridden
// step count when steps > 0) against the background timeline only,
// starting at or near the given campaign time. compactLo/compactHi bound
// the allocation compactness drawn for the placement. When the machine is
// full, the job waits in the queue and retries, like any production
// submission.
func (c *Cluster) SimulateAt(model *apps.Model, steps int, start, compactLo, compactHi float64, seed int64) (*dataset.Run, error) {
	job := *model
	if steps > 0 {
		job.Steps = steps
	}
	p := &plan{model: &job, start: start, estEnd: start + job.TotalBaseTime()*1.8}
	s := rng.New(seed)
	est := p.estEnd - p.start
	for try := 0; try < 64 && p.nodes == nil; try++ {
		busy := c.Timeline.BusyNodesAt(p.start, p.estEnd)
		for _, n := range c.Topo.ComputeNodes(topology.Haswell) {
			busy[n] = true
		}
		alloc := slurm.NewAllocator(c.Topo)
		p.nodes = alloc.AllocAvoiding(job.Nodes, s.Uniform(compactLo, compactHi), busy, s)
		if p.nodes == nil {
			// queue wait, like any production submission
			p.start += s.Uniform(1800, 7200)
			p.estEnd = p.start + est
		}
	}
	if p.nodes == nil {
		return nil, fmt.Errorf("cluster: no room for %s near t=%v", job.Name(), start)
	}
	// a fresh worker context keeps one-off simulations independent of (and
	// safe to run concurrently with) any other simulation on this cluster
	return c.newSimWorker().simulate(p, nil, -1)
}

// SimulateLongRun simulates a single long-running job of the given model
// with an overridden step count — the paper's 620-step MILC run of Figure
// 12. The placement is deliberately fragmented (a production backfill
// allocation), so the run samples the system's congestion state.
func (c *Cluster) SimulateLongRun(model *apps.Model, steps int, start float64, seed int64) (*dataset.Run, error) {
	return c.SimulateAt(model, steps, start, 0.05, 0.3, seed)
}

// WhatIfPlacement is the outcome of a placement what-if experiment: the
// same job, same submission time, same background — placed compactly
// versus fragmented across the machine.
type WhatIfPlacement struct {
	Compact, Fragmented *dataset.Run
}

// CompactSpeedup is the fragmented-to-compact total-time ratio (> 1 means
// the compact placement ran faster).
func (w WhatIfPlacement) CompactSpeedup() float64 {
	ct := w.Compact.TotalTime()
	if ct <= 0 {
		return 0
	}
	return w.Fragmented.TotalTime() / ct
}

// PlacementWhatIf runs the placement experiment the paper's future work
// motivates (and the related simulation study of Yang et al. explored):
// simulate the same job twice at the same time against the same
// background, once with a compact allocation (few groups and routers) and
// once fragmented across the machine.
func (c *Cluster) PlacementWhatIf(model *apps.Model, steps int, start float64, seed int64) (WhatIfPlacement, error) {
	compact, err := c.SimulateAt(model, steps, start, 0.9, 0.99, seed)
	if err != nil {
		return WhatIfPlacement{}, err
	}
	frag, err := c.SimulateAt(model, steps, start, 0.01, 0.1, seed)
	if err != nil {
		return WhatIfPlacement{}, err
	}
	return WhatIfPlacement{Compact: compact, Fragmented: frag}, nil
}

// MeanStepProfile aggregates a dataset's per-run MPI profiles into best /
// average / worst rows, the shape of Figures 4 and 5.
type ProfileSummary struct {
	BestCompute, BestMPI   float64
	AvgCompute, AvgMPI     float64
	WorstCompute, WorstMPI float64
	Best, Avg, Worst       mpi.Profile
}

// SummarizeProfiles computes the Figure 4/5 decomposition for a dataset:
// the run with the lowest total time is "best", highest is "worst", and
// the routine-level mean over all runs is "average".
func SummarizeProfiles(ds *dataset.Dataset) ProfileSummary {
	var out ProfileSummary
	if len(ds.Runs) == 0 {
		return out
	}
	bestIdx, worstIdx := 0, 0
	bestT, worstT := math.Inf(1), math.Inf(-1)
	for i, r := range ds.Runs {
		t := r.TotalTime()
		if t < bestT {
			bestT, bestIdx = t, i
		}
		if t > worstT {
			worstT, worstIdx = t, i
		}
	}
	best, worst := ds.Runs[bestIdx], ds.Runs[worstIdx]
	out.Best = best.Profile
	out.Worst = worst.Profile
	out.BestCompute, out.BestMPI = best.TotalCompute(), best.Profile.Total()
	out.WorstCompute, out.WorstMPI = worst.TotalCompute(), worst.Profile.Total()
	for _, r := range ds.Runs {
		out.AvgCompute += r.TotalCompute()
		p := r.Profile
		out.Avg.Add(&p)
	}
	n := float64(len(ds.Runs))
	out.AvgCompute /= n
	for i := range out.Avg {
		out.Avg[i] /= n
	}
	out.AvgMPI = out.Avg.Total()
	return out
}
