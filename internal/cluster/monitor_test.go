package cluster

import (
	"bytes"
	"io"
	"testing"

	"dragonvar/internal/monitor"
	"dragonvar/internal/telemetry"
	"dragonvar/internal/traceio"
)

// tinyMonitor builds a monitor sized for the test machine's topology.
func tinyMonitor(t *testing.T, c *Cluster, events io.Writer) *monitor.Monitor {
	t.Helper()
	m, err := monitor.New(monitor.Config{
		NumRouters:      c.Topo.Cfg.NumRouters(),
		SeriesPerRouter: LDMSSeriesPerRouter,
		RoutersPerGroup: c.Topo.Cfg.RoutersPerGroup(),
		Events:          events,
		Source:          "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCampaignIdenticalWithMonitor enforces the monitor's observation-only
// contract: a faulted parallel campaign with a live streaming monitor
// attached is byte-identical to the unmonitored serial one, while the
// monitor actually observed the rounds.
func TestCampaignIdenticalWithMonitor(t *testing.T) {
	cfg := faultyConfig(t, 41)
	telemetry.Disable()
	baselineCamp := campaignAtWorkers(t, cfg, 1)
	baseline := campaignHash(t, baselineCamp)

	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := tinyMonitor(t, c, &bytes.Buffer{})
	cfg.Monitor = m
	monitored := campaignHash(t, campaignAtWorkers(t, cfg, 4))
	if monitored != baseline {
		t.Fatal("monitored parallel campaign differs from unmonitored serial campaign")
	}

	s := m.Summary()
	if s.Samples == 0 {
		t.Fatal("monitor observed no rounds during the campaign")
	}
	// The campaign's dropout window must surface as missing observations
	// whenever any recorded run actually lost counter reads.
	campaignHasGaps := false
	for _, ds := range baselineCamp.Datasets {
		for _, r := range ds.Runs {
			if r.GapFraction() > 0 {
				campaignHasGaps = true
			}
		}
	}
	if campaignHasGaps && s.Missing == 0 {
		t.Error("campaign recorded dropped counter reads but the monitor saw no missing observations")
	}
	if campaignHasGaps && s.Events[monitor.EventSamplerGap] == 0 {
		t.Error("monitor coalesced no sampler_gap events despite dropped reads")
	}
}

// TestRecordLDMSFeedsMonitor checks the live recording feed: a recording
// with a dropout window drives the attached monitor, and an offline replay
// of the very log it wrote sees the same stream shape.
func TestRecordLDMSFeedsMonitor(t *testing.T) {
	cfg := tinyConfig(310)
	cfg.FaultSpec = "dropout@3780-4020" // drops the middle 4 of 10 samples
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var events bytes.Buffer
	live := tinyMonitor(t, c, &events)
	c.cfg.Monitor = live

	var logBuf bytes.Buffer
	w, err := traceio.NewWriter(&logBuf, c.Topo.Cfg.NumRouters()*LDMSSeriesPerRouter)
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.RecordLDMS(w, 3600, 3600+600, 60)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("samples = %d, want 10", n)
	}
	if err := live.Finish(); err != nil {
		t.Fatal(err)
	}
	ls := live.Summary()
	// 6 healthy samples → 5 deltas; 4 explicit missing markers.
	if ls.Samples != 5 || ls.Missing != 4 {
		t.Fatalf("live monitor saw %d samples / %d missing, want 5 / 4", ls.Samples, ls.Missing)
	}
	if ls.Events[monitor.EventSamplerGap] != 1 {
		t.Errorf("live monitor emitted %d sampler_gap events, want 1", ls.Events[monitor.EventSamplerGap])
	}

	// Offline replay of the same log must reconstruct the same stream shape.
	rd, err := traceio.NewReader(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	offline := tinyMonitor(t, c, nil)
	st, err := monitor.Replay(rd, offline)
	if err != nil {
		t.Fatal(err)
	}
	os := offline.Summary()
	if st.Samples != ls.Samples || st.Missing != ls.Missing {
		t.Errorf("replay saw %d/%d, live saw %d/%d", st.Samples, st.Missing, ls.Samples, ls.Missing)
	}
	if os.Events[monitor.EventSamplerGap] != ls.Events[monitor.EventSamplerGap] {
		t.Errorf("replay gap events = %d, live = %d",
			os.Events[monitor.EventSamplerGap], ls.Events[monitor.EventSamplerGap])
	}
}
