package cluster

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"dragonvar/internal/counters"
	"dragonvar/internal/dataset"
	"dragonvar/internal/topology"
	"dragonvar/internal/traceio"
)

// faultyConfig is the tiny campaign with a mixed fault schedule: random
// link failures and degradations plus an explicit day-long dropout window
// and a machine-wide drain on day 3.
func faultyConfig(t *testing.T, seed int64) Config {
	t.Helper()
	cfg := tinyConfig(seed)
	topo, err := topology.New(cfg.Machine)
	if err != nil {
		t.Fatal(err)
	}
	clauses := []string{"links=2", "degraded=3", "outage=21600", "dropout@86400-172800"}
	for r := 0; r < topo.Cfg.NumRouters(); r++ {
		clauses = append(clauses, "drain:"+strconv.Itoa(r)+"@216000-237600")
	}
	cfg.FaultSpec = strings.Join(clauses, ",")
	return cfg
}

func runFaultyCampaign(t *testing.T, seed int64) *dataset.Campaign {
	t.Helper()
	c, err := New(faultyConfig(t, seed))
	if err != nil {
		t.Fatal(err)
	}
	camp, err := c.RunCampaign()
	if err != nil {
		t.Fatal(err)
	}
	return camp
}

func TestFaultedCampaignCompletes(t *testing.T) {
	camp := runFaultyCampaign(t, 300)
	if err := camp.Validate(); err != nil {
		t.Fatal(err)
	}
	var runs int
	for _, ds := range camp.Datasets {
		runs += len(ds.Runs)
		for _, r := range ds.Runs {
			for s := 0; s < r.Steps(); s++ {
				if r.StepTimes[s] <= 0 || math.IsNaN(r.StepTimes[s]) {
					t.Fatalf("%s: bad step time %v", ds.Name, r.StepTimes[s])
				}
				// a healthy step's counters are finite; a dropped step's are
				// explicitly missing, never zero-filled garbage
				if r.MissingAt(s) != counters.IsMissing(r.Counters[s][0]) {
					t.Fatalf("%s: Missing flag disagrees with counter marker at step %d", ds.Name, s)
				}
			}
		}
	}
	if runs == 0 {
		t.Fatal("faulted campaign produced no runs at all")
	}
}

func TestFaultedCampaignRecordsGaps(t *testing.T) {
	camp := runFaultyCampaign(t, 301)
	gf := camp.GapFraction()
	if gf <= 0 || gf >= 1 {
		t.Fatalf("gap fraction = %v; the day-long dropout should lose some but not all samples", gf)
	}
}

func TestFaultedCampaignRequeues(t *testing.T) {
	// first schedule an unfaulted campaign to learn where and when the
	// last controlled run executes, then drain exactly its routers for a
	// short window mid-run: every plan scheduled before it is unaffected,
	// so the kill — and the requeue — is deterministic
	seed := int64(303)
	clean, err := New(tinyConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	plans, err := clean.schedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("clean campaign scheduled no plans")
	}
	victim := plans[len(plans)-1]
	mid := victim.start + 5 // a few seconds into the run
	routers := map[topology.RouterID]bool{}
	for _, n := range victim.nodes {
		routers[clean.Topo.RouterOfNode(n)] = true
	}

	// the drain window (600 s) is shorter than the first requeue backoff
	// (900 s), so the resubmission lands on a healthy machine
	var clauses []string
	for r := range routers {
		clauses = append(clauses, "drain:"+strconv.Itoa(int(r))+"@"+
			strconv.FormatFloat(mid, 'f', 0, 64)+"-"+strconv.FormatFloat(mid+600, 'f', 0, 64))
	}
	cfg := tinyConfig(seed)
	cfg.FaultSpec = strings.Join(clauses, ",")
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := c.RunCampaign()
	if err != nil {
		t.Fatal(err)
	}
	if camp.TotalRequeues() == 0 {
		t.Fatal("draining a running job's routers requeued nothing")
	}
	// the requeued run restarts after the fault hit, never before
	for _, ds := range camp.Datasets {
		for _, r := range ds.Runs {
			if r.Requeues > 0 && r.Start < mid {
				t.Fatalf("requeued run starts at %v, before the drain at %v", r.Start, mid)
			}
		}
	}
}

func TestFaultedCampaignDeterministic(t *testing.T) {
	a := runFaultyCampaign(t, 302)
	b := runFaultyCampaign(t, 302)
	if a.GapFraction() != b.GapFraction() || a.TotalRequeues() != b.TotalRequeues() {
		t.Fatalf("gap/requeue totals differ: %v/%d vs %v/%d",
			a.GapFraction(), a.TotalRequeues(), b.GapFraction(), b.TotalRequeues())
	}
	for di, da := range a.Datasets {
		db := b.Datasets[di]
		if len(da.Runs) != len(db.Runs) {
			t.Fatalf("%s: run counts differ: %d vs %d", da.Name, len(da.Runs), len(db.Runs))
		}
		for i := range da.Runs {
			ra, rb := da.Runs[i], db.Runs[i]
			if ra.TotalTime() != rb.TotalTime() || ra.Requeues != rb.Requeues ||
				ra.GapFraction() != rb.GapFraction() {
				t.Fatalf("%s run %d differs between identical seeds", da.Name, i)
			}
		}
	}
}

func TestRecordLDMSWithDropout(t *testing.T) {
	cfg := tinyConfig(310)
	// drop the middle 4 of 10 samples
	cfg.FaultSpec = "dropout@3780-4020"
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	nr := c.Topo.Cfg.NumRouters()
	w, err := traceio.NewWriter(&buf, nr*LDMSSeriesPerRouter)
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.RecordLDMS(w, 3600, 3600+600, 60)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("samples = %d, want 10", n)
	}
	times, samples, err := traceio.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 10 {
		t.Fatalf("read %d samples", len(times))
	}
	var missing int
	for i, row := range samples {
		isMissing := math.IsNaN(row[0])
		inWindow := times[i] >= 3780 && times[i] < 4020
		if isMissing != inWindow {
			t.Fatalf("sample at t=%v: missing=%v, dropout window=%v", times[i], isMissing, inWindow)
		}
		if isMissing {
			missing++
		}
	}
	if missing != 4 {
		t.Fatalf("missing samples = %d, want 4", missing)
	}
	// the healthy samples after the gap are still monotone: the hardware
	// kept counting through the dropout
	var lastHealthy []float64
	for i, row := range samples {
		if math.IsNaN(row[0]) {
			continue
		}
		if lastHealthy != nil {
			for j, v := range row {
				if v < lastHealthy[j] {
					t.Fatalf("series %d decreased at sample %d", j, i)
				}
			}
		}
		lastHealthy = row
	}
}

func TestBadFaultSpecRejected(t *testing.T) {
	cfg := tinyConfig(320)
	cfg.FaultSpec = "link:999999@0-100"
	if _, err := New(cfg); err == nil {
		t.Fatal("out-of-range link in fault spec should be rejected")
	}
	cfg.FaultSpec = "gibberish"
	if _, err := New(cfg); err == nil {
		t.Fatal("unparseable fault spec should be rejected")
	}
}
