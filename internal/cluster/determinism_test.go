package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"testing"

	"dragonvar/internal/dataset"
)

// campaignHash gob-encodes a campaign and hashes the bytes. Campaign holds
// no maps, so the encoding is deterministic and a hash match means the two
// campaigns are byte-identical.
func campaignHash(t *testing.T, camp *dataset.Campaign) [32]byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(camp); err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(buf.Bytes())
}

func campaignAtWorkers(t *testing.T, cfg Config, workers int) *dataset.Campaign {
	t.Helper()
	cfg.Workers = workers
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := c.RunCampaign()
	if err != nil {
		t.Fatal(err)
	}
	return camp
}

// TestCampaignIdenticalAcrossWorkerCounts is the engine's core contract:
// the parallel campaign is byte-identical to the serial one, on both a
// clean machine and a faulted one (where mid-campaign requeues and
// topology rewrites make worker interleaving most dangerous).
func TestCampaignIdenticalAcrossWorkerCounts(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"clean", tinyConfig(41)},
		{"faulted", faultyConfig(t, 41)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := campaignHash(t, campaignAtWorkers(t, tc.cfg, 1))
			for _, workers := range []int{2, 4} {
				if got := campaignHash(t, campaignAtWorkers(t, tc.cfg, workers)); got != serial {
					t.Fatalf("workers=%d campaign differs from serial", workers)
				}
			}
		})
	}
}

// TestCampaignIgnoresWorkersEnv pins down flag/env precedence: an explicit
// Workers count wins, and the env-var path still yields identical results.
func TestCampaignWorkersEnvIdentical(t *testing.T) {
	serial := campaignHash(t, campaignAtWorkers(t, tinyConfig(43), 1))
	t.Setenv("DRAGONVAR_WORKERS", "3")
	if got := campaignHash(t, campaignAtWorkers(t, tinyConfig(43), 0)); got != serial {
		t.Fatal("env-selected worker count changed the campaign")
	}
}
