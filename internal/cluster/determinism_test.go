package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"testing"

	"dragonvar/internal/dataset"
	"dragonvar/internal/telemetry"
)

// campaignHash gob-encodes a campaign and hashes the bytes. Campaign holds
// no maps, so the encoding is deterministic and a hash match means the two
// campaigns are byte-identical.
func campaignHash(t *testing.T, camp *dataset.Campaign) [32]byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(camp); err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(buf.Bytes())
}

func campaignAtWorkers(t *testing.T, cfg Config, workers int) *dataset.Campaign {
	t.Helper()
	cfg.Workers = workers
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := c.RunCampaign()
	if err != nil {
		t.Fatal(err)
	}
	return camp
}

// TestCampaignIdenticalAcrossWorkerCounts is the engine's core contract:
// the parallel campaign is byte-identical to the serial one, on both a
// clean machine and a faulted one (where mid-campaign requeues and
// topology rewrites make worker interleaving most dangerous).
func TestCampaignIdenticalAcrossWorkerCounts(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"clean", tinyConfig(41)},
		{"faulted", faultyConfig(t, 41)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := campaignHash(t, campaignAtWorkers(t, tc.cfg, 1))
			for _, workers := range []int{2, 4} {
				if got := campaignHash(t, campaignAtWorkers(t, tc.cfg, workers)); got != serial {
					t.Fatalf("workers=%d campaign differs from serial", workers)
				}
			}
		})
	}
}

// TestCampaignIdenticalWithTelemetry enforces the observation-only
// contract: a faulted parallel campaign recorded by a live telemetry
// registry is byte-identical to the uninstrumented serial one, and the
// registry actually observed the layers it claims to (engine shard
// timings, routing-cache traffic, campaign counters) — a silent
// no-handles run would pass the hash check while measuring nothing.
func TestCampaignIdenticalWithTelemetry(t *testing.T) {
	cfg := faultyConfig(t, 41)
	telemetry.Disable()
	baseline := campaignHash(t, campaignAtWorkers(t, cfg, 1))

	r := telemetry.New()
	telemetry.Enable(r)
	defer telemetry.Disable()
	instrumented := campaignHash(t, campaignAtWorkers(t, cfg, 4))
	if instrumented != baseline {
		t.Fatal("telemetry-on parallel campaign differs from telemetry-off serial campaign")
	}

	snap := r.Snapshot()
	for _, name := range []string{
		telemetry.MEngineMaps, telemetry.MClusterRuns, telemetry.MClusterRounds,
		telemetry.MNetsimCacheMisses, telemetry.MNetsimRounds,
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s = 0; instrumentation not recording", name)
		}
	}
	for _, name := range []string{telemetry.MClusterRunSecs, telemetry.MEngineShardRun} {
		if snap.Histograms[name].Count == 0 {
			t.Errorf("histogram %s empty; instrumentation not recording", name)
		}
	}
	var sawCampaign, sawRound bool
	for _, sp := range snap.Spans {
		switch sp.Name {
		case telemetry.SpanCampaign:
			sawCampaign = true
		case telemetry.SpanCampaignRound:
			sawRound = true
			if sp.Path != telemetry.SpanCampaign+"/"+telemetry.SpanCampaignRound {
				t.Errorf("round span path = %q; not nested under the campaign", sp.Path)
			}
		}
	}
	if !sawCampaign || !sawRound {
		t.Errorf("missing spans: campaign=%v round=%v", sawCampaign, sawRound)
	}
}

// TestCampaignIgnoresWorkersEnv pins down flag/env precedence: an explicit
// Workers count wins, and the env-var path still yields identical results.
func TestCampaignWorkersEnvIdentical(t *testing.T) {
	serial := campaignHash(t, campaignAtWorkers(t, tinyConfig(43), 1))
	t.Setenv("DRAGONVAR_WORKERS", "3")
	if got := campaignHash(t, campaignAtWorkers(t, tinyConfig(43), 0)); got != serial {
		t.Fatal("env-selected worker count changed the campaign")
	}
}
