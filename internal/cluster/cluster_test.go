package cluster

import (
	"bytes"
	"math"
	"testing"

	"dragonvar/internal/apps"
	"dragonvar/internal/dataset"
	"dragonvar/internal/netsim"
	"dragonvar/internal/topology"
	"dragonvar/internal/traceio"
)

// tinyModels returns shortened copies of two datasets so campaign tests
// stay fast.
func tinyModels() []*apps.Model {
	amg := *apps.Find(apps.AMG, 128)
	amg.Steps = 6
	milc := *apps.Find(apps.MILC, 128)
	milc.Steps = 10
	return []*apps.Model{&amg, &milc}
}

func tinyConfig(seed int64) Config {
	return Config{
		Machine:        topology.Small(),
		Net:            netsim.DefaultConfig(),
		Days:           5,
		Seed:           seed,
		Models:         tinyModels(),
		MeanRunsPerDay: 2,
	}
}

func runTinyCampaign(t *testing.T, seed int64) *dataset.Campaign {
	t.Helper()
	c, err := New(tinyConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	camp, err := c.RunCampaign()
	if err != nil {
		t.Fatal(err)
	}
	return camp
}

func TestCampaignProducesDatasets(t *testing.T) {
	camp := runTinyCampaign(t, 100)
	if len(camp.Datasets) != 2 {
		t.Fatalf("datasets = %d", len(camp.Datasets))
	}
	for _, ds := range camp.Datasets {
		if len(ds.Runs) < 2 {
			t.Fatalf("%s has only %d runs", ds.Name, len(ds.Runs))
		}
		for _, r := range ds.Runs {
			if r.Steps() == 0 {
				t.Fatalf("%s run %d has no steps", ds.Name, r.RunID)
			}
			if r.NumRouters == 0 || r.NumGroups == 0 {
				t.Fatal("placement features missing")
			}
			for s := 0; s < r.Steps(); s++ {
				if r.StepTimes[s] <= 0 {
					t.Fatalf("non-positive step time at step %d", s)
				}
				if r.Counters[s][0] < 0 {
					t.Fatal("negative counter delta")
				}
			}
			if r.Profile.Total() <= 0 {
				t.Fatal("empty MPI profile")
			}
		}
	}
	amg := camp.Get("AMG-128")
	if amg.Steps() != 6 {
		t.Fatalf("AMG steps = %d", amg.Steps())
	}
}

func TestCampaignCountersCarrySignal(t *testing.T) {
	camp := runTinyCampaign(t, 101)
	ds := camp.Get("MILC-128")
	// per-run counter sums must vary across runs (different congestion)
	var totals []float64
	for _, r := range ds.Runs {
		var sum float64
		for s := 0; s < r.Steps(); s++ {
			sum += r.Counters[s][3] // RT_RB_STL
		}
		totals = append(totals, sum)
	}
	allEqual := true
	for i := 1; i < len(totals); i++ {
		if totals[i] != totals[0] {
			allEqual = false
		}
	}
	if allEqual {
		t.Fatal("stall counters identical across runs — no congestion signal")
	}
}

func TestCampaignStepTimesVaryAcrossRuns(t *testing.T) {
	camp := runTinyCampaign(t, 102)
	for _, ds := range camp.Datasets {
		best, worst := math.Inf(1), math.Inf(-1)
		for _, r := range ds.Runs {
			tt := r.TotalTime()
			if tt < best {
				best = tt
			}
			if tt > worst {
				worst = tt
			}
		}
		if worst <= best {
			t.Fatalf("%s: no run-to-run variability (best=%v worst=%v)", ds.Name, best, worst)
		}
	}
}

func TestCampaignDeterministic(t *testing.T) {
	a := runTinyCampaign(t, 103)
	b := runTinyCampaign(t, 103)
	da, db := a.Get("AMG-128"), b.Get("AMG-128")
	if len(da.Runs) != len(db.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(da.Runs), len(db.Runs))
	}
	for i := range da.Runs {
		if da.Runs[i].TotalTime() != db.Runs[i].TotalTime() {
			t.Fatal("campaign not deterministic")
		}
	}
}

func TestNeighborsRecorded(t *testing.T) {
	camp := runTinyCampaign(t, 104)
	sawNeighbor := false
	for _, ds := range camp.Datasets {
		for _, r := range ds.Runs {
			for _, n := range r.Neighbors {
				if n.User == "" || n.MaxNodes <= 0 {
					t.Fatalf("bad neighbor record %+v", n)
				}
				sawNeighbor = true
			}
		}
	}
	if !sawNeighbor {
		t.Fatal("no neighbors recorded in the whole campaign")
	}
}

func TestNeighborsIncludeUser8OnOverlap(t *testing.T) {
	c, err := New(tinyConfig(111))
	if err != nil {
		t.Fatal(err)
	}
	m := tinyModels()[0]
	// two fabricated overlapping plans
	p1 := &plan{model: m, start: 1000, estEnd: 1600, nodes: []topology.NodeID{0}}
	p2 := &plan{model: m, start: 1200, estEnd: 1800, nodes: make([]topology.NodeID, 128)}
	neigh := c.neighbors(p1, []*plan{p1, p2}, 0, 1600)
	found := false
	for _, n := range neigh {
		if n.User == "User-8" && n.MaxNodes == 128 {
			found = true
		}
	}
	if !found {
		t.Fatalf("User-8 missing from neighborhood: %+v", neigh)
	}
	// non-overlapping plan must not appear
	p3 := &plan{model: m, start: 5000, estEnd: 6000, nodes: make([]topology.NodeID, 128)}
	neigh = c.neighbors(p1, []*plan{p1, p3}, 0, 1600)
	for _, n := range neigh {
		if n.User == "User-8" {
			t.Fatal("non-overlapping run recorded as neighbor")
		}
	}
}

func TestMPIFractionSurvivesSimulation(t *testing.T) {
	camp := runTinyCampaign(t, 105)
	ds := camp.Get("MILC-128")
	r := ds.Runs[0]
	frac := r.Profile.Total() / r.TotalTime()
	// MILC is 89% MPI at baseline; congestion only raises it
	if frac < 0.80 || frac > 1.0 {
		t.Fatalf("MILC MPI fraction = %v", frac)
	}
}

func TestSummarizeProfiles(t *testing.T) {
	camp := runTinyCampaign(t, 106)
	ds := camp.Get("AMG-128")
	sum := SummarizeProfiles(ds)
	if sum.BestMPI <= 0 || sum.WorstMPI <= 0 || sum.AvgMPI <= 0 {
		t.Fatal("profile summary empty")
	}
	if sum.BestCompute+sum.BestMPI > sum.WorstCompute+sum.WorstMPI {
		t.Fatal("best run is slower than worst run")
	}
	// average lies between best and worst in MPI time
	if sum.AvgMPI < sum.BestMPI*0.5 || sum.AvgMPI > sum.WorstMPI*1.5 {
		t.Fatalf("average MPI time implausible: best %v avg %v worst %v",
			sum.BestMPI, sum.AvgMPI, sum.WorstMPI)
	}
	if SummarizeProfiles(&dataset.Dataset{}).AvgMPI != 0 {
		t.Fatal("empty dataset should summarize to zero")
	}
}

func TestSimulateLongRun(t *testing.T) {
	c, err := New(tinyConfig(107))
	if err != nil {
		t.Fatal(err)
	}
	milc := apps.Find(apps.MILC, 128)
	run, err := c.SimulateLongRun(milc, 40, 3600, 9)
	if err != nil {
		t.Fatal(err)
	}
	if run.Steps() != 40 {
		t.Fatalf("long run steps = %d", run.Steps())
	}
	for s := 0; s < run.Steps(); s++ {
		if run.StepTimes[s] <= 0 {
			t.Fatal("non-positive step time in long run")
		}
	}
}

func TestMeanStepBehaviorDiscernible(t *testing.T) {
	// Figure 3's core claim: the mean trend across runs is discernible —
	// MILC warmup steps must be clearly faster than main steps in the mean.
	camp := runTinyCampaign(t, 108)
	ds := camp.Get("MILC-128")
	mean := ds.MeanStepTimes()
	warm := (mean[0] + mean[1] + mean[2]) / 3
	// model has warmup < 20; our tiny MILC has 10 steps, all warmup...
	_ = warm
	// instead check AMG's decaying trend: step 0 slower than last step
	amg := camp.Get("AMG-128").MeanStepTimes()
	if amg[0] <= amg[len(amg)-1] {
		t.Fatalf("AMG mean trend lost: first %v, last %v", amg[0], amg[len(amg)-1])
	}
}

func TestUser8SelfInterferenceAffectsTraffic(t *testing.T) {
	// smoke: footprints exist for placed plans, so our runs do interfere
	c, err := New(tinyConfig(109))
	if err != nil {
		t.Fatal(err)
	}
	plans, err := c.schedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plans scheduled")
	}
	for _, p := range plans {
		if p.footprint == nil || p.footprint.NumLinks() == 0 {
			t.Fatal("plan without footprint")
		}
	}
}

func TestProgressCallback(t *testing.T) {
	cfg := tinyConfig(110)
	var calls, lastDone, lastTotal int
	cfg.Days = 1
	cfg.Progress = func(done, total int) {
		calls++
		lastDone, lastTotal = done, total
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunCampaign(); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress callback never invoked")
	}
	if lastDone != lastTotal {
		t.Fatalf("final progress %d/%d", lastDone, lastTotal)
	}
}

func TestRecordLDMS(t *testing.T) {
	c, err := New(tinyConfig(210))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	nr := c.Topo.Cfg.NumRouters()
	w, err := traceio.NewWriter(&buf, nr*LDMSSeriesPerRouter)
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.RecordLDMS(w, 3600, 3600+600, 60)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("samples = %d, want 10", n)
	}
	times, samples, err := traceio.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 10 {
		t.Fatalf("read %d samples", len(times))
	}
	// counters are cumulative: monotone non-decreasing per series
	for s := 1; s < len(samples); s++ {
		for j, v := range samples[s] {
			if v < samples[s-1][j] {
				t.Fatalf("series %d decreased at sample %d", j, s)
			}
		}
	}
	// some router saw traffic
	var total float64
	for _, v := range samples[len(samples)-1] {
		total += v
	}
	if total == 0 {
		t.Fatal("no traffic recorded")
	}
	// invalid windows rejected
	if _, err := c.RecordLDMS(w, 100, 50, 60); err == nil {
		t.Fatal("reversed window should error")
	}
	if _, err := c.RecordLDMS(w, 0, 100, 0); err == nil {
		t.Fatal("zero interval should error")
	}
}

func TestPlacementWhatIf(t *testing.T) {
	c, err := New(tinyConfig(220))
	if err != nil {
		t.Fatal(err)
	}
	milc := *apps.Find(apps.MILC, 128)
	milc.Nodes = 32 // small enough that a compact allocation can stay in few groups
	w, err := c.PlacementWhatIf(&milc, 12, 7200, 31)
	if err != nil {
		t.Fatal(err)
	}
	if w.Compact.Steps() != 12 || w.Fragmented.Steps() != 12 {
		t.Fatal("wrong step counts")
	}
	// the fragmented placement must span more groups
	if w.Fragmented.NumGroups <= w.Compact.NumGroups {
		t.Fatalf("fragmented run spans %d groups, compact %d — placement knob broken",
			w.Fragmented.NumGroups, w.Compact.NumGroups)
	}
	if w.CompactSpeedup() <= 0 {
		t.Fatalf("speedup = %v", w.CompactSpeedup())
	}
}

func TestSimulateAtStepOverride(t *testing.T) {
	c, err := New(tinyConfig(221))
	if err != nil {
		t.Fatal(err)
	}
	amg := apps.Find(apps.AMG, 128)
	// steps <= 0 keeps the model's own count
	run, err := c.SimulateAt(amg, 0, 3600, 0.3, 0.7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if run.Steps() != amg.Steps {
		t.Fatalf("steps = %d, want model default %d", run.Steps(), amg.Steps)
	}
}
