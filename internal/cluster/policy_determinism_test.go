package cluster

import (
	"testing"

	"dragonvar/internal/routing"
	"dragonvar/internal/slurm"
)

// TestCampaignIdenticalAcrossPolicyMatrix extends the engine's core
// contract over the whole policy surface: for every routing × placement
// pair, the parallel campaign is byte-identical to the serial one. The
// feedback and interference policies are the dangerous ones — their inputs
// (stall EWMAs, placement advice) are derived from simulation state, and
// any leak of worker-interleaved state into them shows up here.
func TestCampaignIdenticalAcrossPolicyMatrix(t *testing.T) {
	for _, rp := range routing.PolicyNames() {
		for _, pp := range slurm.PlacementPolicyNames() {
			t.Run(rp+"/"+pp, func(t *testing.T) {
				cfg := tinyConfig(41)
				cfg.Net.Routing = rp
				cfg.Placement = pp
				if pp == "interference" {
					cfg.BlamedUsers = []string{"User-2", "User-7"}
				}
				serial := campaignHash(t, campaignAtWorkers(t, cfg, 1))
				if got := campaignHash(t, campaignAtWorkers(t, cfg, 4)); got != serial {
					t.Fatalf("%s/%s: workers=4 campaign differs from serial", rp, pp)
				}
			})
		}
	}
}

// TestPolicyPairsProduceDistinctCampaigns: the knobs actually act — the
// baseline, a different routing policy, and a different placement policy
// all yield different campaign bytes for the same seed.
func TestPolicyPairsProduceDistinctCampaigns(t *testing.T) {
	base := tinyConfig(41)
	seen := map[[32]byte]string{}
	for _, tc := range []struct {
		name               string
		routing, placement string
	}{
		{"baseline", "", ""},
		{"minimal", "minimal", ""},
		{"valiant", "valiant", ""},
		{"compact", "", "compact"},
	} {
		cfg := base
		cfg.Net.Routing = tc.routing
		cfg.Placement = tc.placement
		h := campaignHash(t, campaignAtWorkers(t, cfg, 2))
		if prev, dup := seen[h]; dup {
			t.Fatalf("%s produced the same campaign as %s — policy not applied", tc.name, prev)
		}
		seen[h] = tc.name
	}
}

// TestFaultedFeedbackInterferenceDeterminism is the full stack at once:
// link/router faults, mid-campaign requeues, the feedback routing loop,
// and advice-driven placement — still byte-identical across worker counts.
func TestFaultedFeedbackInterferenceDeterminism(t *testing.T) {
	cfg := faultyConfig(t, 41)
	cfg.Net.Routing = "feedback"
	cfg.Placement = "interference"
	cfg.BlamedUsers = []string{"User-1"}
	serial := campaignHash(t, campaignAtWorkers(t, cfg, 1))
	for _, workers := range []int{2, 4} {
		if got := campaignHash(t, campaignAtWorkers(t, cfg, workers)); got != serial {
			t.Fatalf("workers=%d faulted feedback/interference campaign differs from serial", workers)
		}
	}
}

// TestCampaignRecordsPolicies: the campaign carries its policy identity
// (the cache-check key) for both the default and an explicit pair.
func TestCampaignRecordsPolicies(t *testing.T) {
	camp := campaignAtWorkers(t, tinyConfig(41), 2)
	if camp.Routing != "adaptive" || camp.Placement != "firstfit" {
		t.Fatalf("default campaign records %q/%q, want adaptive/firstfit", camp.Routing, camp.Placement)
	}
	cfg := tinyConfig(41)
	cfg.Net.Routing = "valiant"
	cfg.Placement = "compact"
	camp = campaignAtWorkers(t, cfg, 2)
	if camp.Routing != "valiant" || camp.Placement != "compact" {
		t.Fatalf("campaign records %q/%q, want valiant/compact", camp.Routing, camp.Placement)
	}
}

// TestClusterRejectsUnknownPolicies: a typo'd policy fails at New, not
// deep inside a campaign.
func TestClusterRejectsUnknownPolicies(t *testing.T) {
	cfg := tinyConfig(41)
	cfg.Net.Routing = "ugal-x"
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted an unknown routing policy")
	}
	cfg = tinyConfig(41)
	cfg.Placement = "round-robin"
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted an unknown placement policy")
	}
}
