package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"

	"dragonvar/internal/topology"
)

// This file is the work-unit face of the campaign: the pieces a
// distributed executor (internal/dist) needs to ship single plan indices
// to other processes and still produce a campaign byte-identical to the
// in-process run. The contract rests on two facts established elsewhere in
// the package: the schedule is a pure function of the campaign config
// (rng.Split depends only on seed material and label), and a run's result
// depends only on its plan, the full plan list, and its index — never on
// which worker simulates it or in what order.

// Resolved returns the config with every default filled in, exactly as New
// applies them. A coordinator uses it to publish the effective campaign
// spec to workers, so both sides schedule identical plan lists.
func (c Config) Resolved() Config { return c.withDefaults() }

// PlanInfo schedules the campaign's work units (a deterministic, repeatable
// computation) and returns the unit count plus a digest of the plan list.
// Coordinator and workers exchange the digest at join time: a mismatch
// means the processes would simulate different campaigns — differing
// binaries, seeds, or machine configs — and must not exchange units.
func (c *Cluster) PlanInfo() (numUnits int, digest string, err error) {
	plans, err := c.schedule()
	if err != nil {
		return 0, "", err
	}
	return len(plans), planDigest(c.cfg, plans), nil
}

// planDigest hashes everything a unit's result depends on: the campaign
// identity (seed, length, faults, machine and network calibration) and
// every plan's schedule and placement, with float64 fields hashed by their
// exact bit patterns.
func planDigest(cfg Config, plans []*plan) string {
	h := sha256.New()
	fmt.Fprintf(h, "dragonvar-plan-v1 seed=%d days=%x faults=%q machine=%+v net=%+v rate=%x noise=%x units=%d placement=%s blamed=%q\n",
		cfg.Seed, math.Float64bits(cfg.Days), cfg.FaultSpec, cfg.Machine, cfg.Net,
		math.Float64bits(cfg.MeanRunsPerDay), math.Float64bits(cfg.CounterNoise), len(plans),
		cfg.Placement, cfg.BlamedUsers)
	for i, p := range plans {
		fmt.Fprintf(h, "%d %s %d %x %x %v\n", i, p.model.Name(), p.day,
			math.Float64bits(p.start), math.Float64bits(p.estEnd), p.nodes)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// UnitSim is the worker-process side of a distributed campaign: it holds a
// deterministically re-derived plan list and simulates one unit at a time
// on a private simulation worker. It is not safe for concurrent use — a
// dist worker owns one UnitSim and simulates its leased units serially,
// which is exactly the per-worker contract the determinism proof needs.
type UnitSim struct {
	c       *Cluster
	plans   []*plan
	sw      *simWorker
	applied []int // highest override Requeues applied, per unit
	digest  string
}

// NewUnitSim builds the cluster from cfg and schedules the plan list. The
// cfg should come from the coordinator's published spec (Config.Resolved on
// the coordinator side) so both processes resolve identical defaults.
func NewUnitSim(cfg Config) (*UnitSim, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	plans, err := c.schedule()
	if err != nil {
		return nil, err
	}
	return &UnitSim{
		c:       c,
		plans:   plans,
		sw:      c.newSimWorker(),
		applied: make([]int, len(plans)),
		digest:  planDigest(c.cfg, plans),
	}, nil
}

// NumUnits returns the number of work units (plans) in the campaign.
func (u *UnitSim) NumUnits() int { return len(u.plans) }

// PlanDigest returns the digest of the derived plan list, for comparison
// against the coordinator's.
func (u *UnitSim) PlanDigest() string { return u.digest }

// Apply replays requeue overrides onto the local plan list, bringing it in
// sync with the coordinator's. Applying is idempotent and order-tolerant
// for repeats: an override is skipped unless its Requeues exceeds what this
// UnitSim has already applied for that unit, so a worker can simply apply
// every lease's full accumulated override list.
func (u *UnitSim) Apply(ovs []PlanOverride) error {
	for _, ov := range ovs {
		if ov.Unit < 0 || ov.Unit >= len(u.plans) {
			return fmt.Errorf("cluster: override for unit %d, campaign has %d", ov.Unit, len(u.plans))
		}
		if ov.Requeues <= u.applied[ov.Unit] {
			continue
		}
		p := u.plans[ov.Unit]
		p.start = ov.Start
		p.estEnd = ov.EstEnd
		p.nodes = append([]topology.NodeID(nil), ov.Nodes...)
		p.pat = nil // the cached pattern follows the placement
		p.requeues = ov.Requeues
		p.footprint = u.c.planFootprint(p)
		u.applied[ov.Unit] = ov.Requeues
	}
	return nil
}

// Simulate executes one work unit against the current plan list. A run
// killed by a fault comes back as a drained outcome (the coordinator makes
// the requeue decision); any other error is a genuine failure.
func (u *UnitSim) Simulate(unit int) (UnitOutcome, error) {
	if unit < 0 || unit >= len(u.plans) {
		return UnitOutcome{}, fmt.Errorf("cluster: simulate unit %d, campaign has %d", unit, len(u.plans))
	}
	run, err := u.sw.simulate(u.plans[unit], u.plans, unit)
	var de drainError
	if errors.As(err, &de) {
		return UnitOutcome{Drained: true, DrainAt: de.at}, nil
	}
	if err != nil {
		return UnitOutcome{}, err
	}
	return UnitOutcome{Run: run}, nil
}
