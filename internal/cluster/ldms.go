package cluster

import (
	"context"
	"fmt"

	"dragonvar/internal/counters"
	"dragonvar/internal/netsim"
	"dragonvar/internal/telemetry"
	"dragonvar/internal/traceio"
)

// ldmsSources are the per-router counters the system-wide monitor samples,
// matching the LDMS feature definitions of §III-C / §V-C.
var ldmsSources = [4]counters.Index{
	counters.RTFlitTot, counters.RTRBStl, counters.PTFlitTot, counters.PTPktTot,
}

// LDMSSeriesPerRouter is the number of counter series recorded per router.
const LDMSSeriesPerRouter = len(ldmsSources)

// RecordLDMS replays the background timeline over [t0, t1) at the given
// sampling interval and streams system-wide counter samples — four series
// per router — to the writer, mimicking the LDMS pipeline that sampled
// every Aries router on Cori once per second (§III-C). Values are the
// cumulative hardware counters, which the log's delta encoding compresses
// well. Returns the number of samples written.
//
// The replay drives the same network simulator the campaign uses, so the
// recorded stream is consistent with what instrumented runs would have
// observed over the same period. Fault epochs are applied per sample:
// degraded or dead links reshape the traffic the counters see, and during
// sampler-dropout windows a missing-sample marker is written instead of
// counter values (the hardware keeps counting; only the reads are lost).
func (c *Cluster) RecordLDMS(w *traceio.Writer, t0, t1, interval float64) (int, error) {
	return c.RecordLDMSCtx(context.Background(), w, t0, t1, interval)
}

// RecordLDMSCtx is RecordLDMS with cancellation: on context cancellation the
// recorder stops at a sample boundary, flushes what it has written so far
// (the log stays readable), and returns the sample count alongside ctx's
// error — a partial recording, never a truncated one.
func (c *Cluster) RecordLDMSCtx(ctx context.Context, w *traceio.Writer, t0, t1, interval float64) (int, error) {
	if interval <= 0 {
		return 0, fmt.Errorf("cluster: non-positive sampling interval")
	}
	if t1 <= t0 {
		return 0, fmt.Errorf("cluster: empty recording window [%v, %v)", t0, t1)
	}
	_, span := telemetry.Start(ctx, telemetry.SpanLDMSRecord)
	defer span.End()
	nr := c.Topo.Cfg.NumRouters()
	values := make([]float64, nr*LDMSSeriesPerRouter)
	samples := 0
	defer func() { c.tm.ldms.Add(int64(samples)) }()

	// live monitor feed state: deltas against the previous healthy sample
	// (the counters keep counting through a dropout, so the first healthy
	// delta after a gap spans it)
	mon := c.cfg.Monitor
	var monPrev, monDeltas []float64
	monPrevT := 0.0
	if mon != nil {
		monPrev = make([]float64, len(values))
		monDeltas = make([]float64, len(values))
	}
	havePrev := false

	jobs := c.Timeline.Overlapping(t0, t1)
	var scaled []netsim.ScaledLoad
	for t := t0; t < t1; t += interval {
		if err := ctx.Err(); err != nil {
			if ferr := w.Flush(); ferr != nil {
				return samples, ferr
			}
			return samples, err
		}
		scaled = scaled[:0]
		for _, j := range jobs {
			if j.Overlaps(t, t+interval) {
				if sl := j.ScaledLoadAt(t, interval); sl.Scale > 0 {
					scaled = append(scaled, sl)
				}
			}
		}
		c.applyFaultsAt(t)
		c.Net.RunRound(nil, scaled, interval)
		if c.Faults.DropoutAt(t) {
			if err := w.WriteMissing(t); err != nil {
				return samples, err
			}
			if mon != nil {
				mon.ObserveMissing(t)
			}
			samples++
			continue
		}
		c.Net.Board.SampleInto(ldmsSources[:], values)
		if err := w.WriteSample(t, values); err != nil {
			return samples, err
		}
		if mon != nil {
			if havePrev && t > monPrevT {
				for i := range monDeltas {
					monDeltas[i] = values[i] - monPrev[i]
				}
				mon.ObserveRound(t, t-monPrevT, monDeltas)
			}
			copy(monPrev, values)
			monPrevT = t
			havePrev = true
		}
		samples++
	}
	return samples, w.Flush()
}
