package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestNilHandles exercises every operation on nil handles: instrumented
// code must never branch on whether telemetry is enabled.
func TestNilHandles(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram recorded")
	}
	var sp *Span
	sp.End() // must not panic

	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", CountBuckets) != nil {
		t.Fatal("nil registry handed out a live handle")
	}
	if snap := r.Snapshot(); snap == nil || len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

// TestDisabledHelpers checks the package-level helpers are no-ops without
// an active registry.
func TestDisabledHelpers(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() true after Disable")
	}
	C("a").Inc()
	G("b").Set(1)
	H("c", SecondsBuckets).Observe(1)
	ctx, sp := Start(context.Background(), "root")
	if sp != nil {
		t.Fatal("Start returned a live span while disabled")
	}
	sp.End()
	if FromContext(ctx) != nil {
		t.Fatal("disabled Start attached a span to the context")
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines; run
// under -race this is the concurrency-safety proof for the handle types
// and the create-or-get paths.
func TestRegistryConcurrency(t *testing.T) {
	r := New()
	const goroutines = 16
	const iters = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				r.Counter("shared/counter").Inc()
				r.Gauge("shared/gauge").Add(1)
				r.Histogram("shared/hist", CountBuckets).Observe(float64(i))
				if i%100 == 0 {
					_, sp := StartIn(r, ctx, "work")
					sp.End()
					r.Snapshot() // snapshots race with updates by design
				}
			}
		}(g)
	}
	wg.Wait()

	if got := r.Counter("shared/counter").Value(); got != goroutines*iters {
		t.Fatalf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := r.Gauge("shared/gauge").Value(); got != goroutines*iters {
		t.Fatalf("gauge = %g, want %d", got, goroutines*iters)
	}
	h := r.Histogram("shared/hist", CountBuckets)
	if h.Count() != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), goroutines*iters)
	}
	// each goroutine observes 0+1+…+(iters-1)
	want := float64(goroutines) * float64(iters*(iters-1)) / 2
	if math.Abs(h.Sum()-want) > 1e-6*want {
		t.Fatalf("histogram sum = %g, want %g", h.Sum(), want)
	}
}

// TestHistogramBucketEdges pins the bucket semantics: bucket i counts
// observations ≤ bounds[i] (and > bounds[i-1]); values above every bound
// land in the dedicated overflow bucket.
func TestHistogramBucketEdges(t *testing.T) {
	r := New()
	h := r.Histogram("edges", []float64{1, 10, 100})
	h.Observe(0.5) // below first bound → bucket 0
	h.Observe(1)   // exactly on a bound → that bound's bucket
	h.Observe(1.5) // between bounds → bucket 1
	h.Observe(10)  // exactly on the second bound → bucket 1
	h.Observe(100) // last bound → bucket 2
	h.Observe(101) // above every bound → overflow bucket

	snap := r.Snapshot().Histograms["edges"]
	wantCounts := []int64{2, 2, 1, 1}
	if len(snap.Counts) != len(wantCounts) {
		t.Fatalf("got %d buckets, want %d (len(bounds)+1)", len(snap.Counts), len(wantCounts))
	}
	for i, want := range wantCounts {
		if snap.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, snap.Counts[i], want)
		}
	}
	if snap.Count != 6 {
		t.Errorf("count = %d, want 6", snap.Count)
	}
	if want := 0.5 + 1 + 1.5 + 10 + 100 + 101; snap.Sum != want {
		t.Errorf("sum = %g, want %g", snap.Sum, want)
	}
	// the layout is fixed at first creation; later bounds are ignored
	if h2 := r.Histogram("edges", []float64{5}); h2 != h {
		t.Error("second Histogram call with different bounds returned a new histogram")
	}
}

// TestHistogramLayoutHasNoInfinity checks the JSON-safety property the
// overflow bucket exists for: no snapshot bound is ±Inf.
func TestHistogramLayoutHasNoInfinity(t *testing.T) {
	for _, bounds := range [][]float64{SecondsBuckets, BytesBuckets, CountBuckets} {
		for _, b := range bounds {
			if math.IsInf(b, 0) || math.IsNaN(b) {
				t.Fatalf("bucket layout contains %v", b)
			}
		}
	}
}

// TestSpanNesting checks parent wiring, path construction, and that the
// snapshot returns spans sorted by start time.
func TestSpanNesting(t *testing.T) {
	r := New()
	ctx := context.Background()
	ctx, root := StartIn(r, ctx, "campaign")
	cctx, child := StartIn(r, ctx, "round")
	_, grand := StartIn(r, cctx, "merge")
	grand.End()
	child.End()
	// a sibling started from the root context
	_, sib := StartIn(r, ctx, "schedule")
	sib.End()
	root.End()

	spans := r.Snapshot().Spans
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if p := byName["campaign"]; p.Parent != 0 || p.Path != "campaign" {
		t.Errorf("root span: parent=%d path=%q", p.Parent, p.Path)
	}
	if c := byName["round"]; c.Parent != byName["campaign"].ID || c.Path != "campaign/round" {
		t.Errorf("child span: parent=%d path=%q", c.Parent, c.Path)
	}
	if g := byName["merge"]; g.Parent != byName["round"].ID || g.Path != "campaign/round/merge" {
		t.Errorf("grandchild span: parent=%d path=%q", g.Parent, g.Path)
	}
	if s := byName["schedule"]; s.Parent != byName["campaign"].ID {
		t.Errorf("sibling span: parent=%d, want root's id", s.Parent)
	}
	// chronological order: root started first
	if spans[0].Name != "campaign" {
		t.Errorf("spans not sorted by start: first is %q", spans[0].Name)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].StartS < spans[i-1].StartS {
			t.Errorf("spans out of order at %d", i)
		}
	}
	// durations nest: parent covers child
	if byName["campaign"].DurS < byName["round"].DurS {
		t.Error("parent duration shorter than child")
	}
}

// TestSpanCrossRegistry: a span from a previous registry in the context
// must not become the parent of a span in a new registry.
func TestSpanCrossRegistry(t *testing.T) {
	r1, r2 := New(), New()
	ctx, sp1 := StartIn(r1, context.Background(), "old")
	defer sp1.End()
	_, sp2 := StartIn(r2, ctx, "new")
	sp2.End()
	spans := r2.Snapshot().Spans
	if len(spans) != 1 || spans[0].Parent != 0 || spans[0].Path != "new" {
		t.Fatalf("cross-registry parent leaked: %+v", spans)
	}
}

// TestSnapshotRoundTrip writes a populated snapshot to JSON and reads it
// back, checking the exported state survives unchanged.
func TestSnapshotRoundTrip(t *testing.T) {
	r := New()
	r.Counter("runs").Add(7)
	r.Gauge("workers").Set(4)
	r.Histogram("secs", SecondsBuckets).Observe(0.5)
	_, sp := StartIn(r, context.Background(), "trip")
	sp.End()
	snap := r.Snapshot()

	path := filepath.Join(t.TempDir(), "snap.json")
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters["runs"] != 7 || got.Gauges["workers"] != 4 {
		t.Fatalf("scalars did not round-trip: %+v", got)
	}
	h := got.Histograms["secs"]
	if h.Count != 1 || h.Sum != 0.5 || len(h.Bounds) != len(SecondsBuckets) {
		t.Fatalf("histogram did not round-trip: %+v", h)
	}
	if len(got.Spans) != 1 || got.Spans[0].Name != "trip" {
		t.Fatalf("spans did not round-trip: %+v", got.Spans)
	}
	// strict equality of the re-encoded JSON guards against lossy fields
	var buf2 bytes.Buffer
	if err := got.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("snapshot JSON is not stable across a round trip")
	}
}

// TestFlushAndSummary checks Flush writes a loadable file and the summary
// mentions every metric.
func TestFlushAndSummary(t *testing.T) {
	r := New()
	Enable(r)
	defer Disable()
	C("cluster/runs_total").Add(3)
	H("cluster/run_seconds", SecondsBuckets).Observe(2)
	ctx, sp := Start(context.Background(), "campaign")
	_, child := Start(ctx, "round")
	child.End()
	sp.End()

	path := filepath.Join(t.TempDir(), "out.json")
	if err := Flush(path); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["cluster/runs_total"] != 3 {
		t.Fatalf("flushed counter = %d", snap.Counters["cluster/runs_total"])
	}
	sum := snap.Summary()
	for _, want := range []string{"cluster/runs_total", "cluster/run_seconds", "campaign", "round"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	flame := snap.Flame()
	// the child renders indented under the parent with its share
	if !strings.Contains(flame, "round") || !strings.Contains(flame, "%") {
		t.Errorf("flame missing nested child:\n%s", flame)
	}
}

// TestFlushDisabledOrEmpty: Flush must be a no-op (not an error) when
// telemetry is off or no path was given, so CLIs can defer it blindly.
func TestFlushDisabledOrEmpty(t *testing.T) {
	Disable()
	if err := Flush(filepath.Join(t.TempDir(), "never.json")); err != nil {
		t.Fatal(err)
	}
	Enable(New())
	defer Disable()
	if err := Flush(""); err != nil {
		t.Fatal(err)
	}
}

// TestNamesAreUnique guards the canonical name lists against copy-paste
// duplicates, which would silently merge two metrics into one.
func TestNamesAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range AllMetricNames {
		if seen[n] {
			t.Errorf("duplicate metric name %q", n)
		}
		seen[n] = true
	}
	seen = map[string]bool{}
	for _, n := range AllSpanNames {
		if seen[n] {
			t.Errorf("duplicate span name %q", n)
		}
		seen[n] = true
	}
}

// TestSnapshotJSONShape pins the wire field names the docs and external
// consumers rely on.
func TestSnapshotJSONShape(t *testing.T) {
	r := New()
	r.Counter("c").Inc()
	_, sp := StartIn(r, context.Background(), "s")
	sp.End()
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"captured_at", "uptime_s", "counters", "gauges", "histograms", "spans"} {
		if _, ok := m[key]; !ok {
			t.Errorf("snapshot JSON missing top-level key %q", key)
		}
	}
}
