package telemetry

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/http"
	"os"
	"sync/atomic"
	"time"
)

// Distributed-tracing identity. Every span carries a 128-bit trace ID
// (shared by every span of one logical operation, across processes) and a
// 64-bit span ID, linked to its parent span ID. IDs are generated from a
// process-local atomic counter mixed through splitmix64 with one-shot
// entropy drawn at init — crypto/rand plus pid and wall clock — so ID
// generation never touches a seeded simulation RNG stream and two processes
// starting in the same nanosecond still diverge. Tracing therefore upholds
// the observation-only contract: IDs are metadata about execution, never
// inputs to it.

// TraceID is a 128-bit trace identifier, rendered as 32 lowercase hex
// digits. The zero value means "no trace".
type TraceID [16]byte

// SpanID is a 64-bit span identifier, rendered as 16 lowercase hex digits.
// The zero value means "no span".
type SpanID [8]byte

// IsZero reports whether the trace ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the trace ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the span ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the span ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// idState seeds the splitmix64 ID generator once per process.
var idState struct {
	seed    uint64
	counter atomic.Uint64
}

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		idState.seed = binary.LittleEndian.Uint64(b[:])
	}
	// fold in pid and wall clock so even a broken entropy source cannot
	// make two concurrently launched processes collide
	idState.seed ^= uint64(os.Getpid())<<32 ^ uint64(time.Now().UnixNano())
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche mix, so distinct counter values always map to distinct IDs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// nextID returns the next 64-bit identifier. Safe for concurrent use; never
// returns zero (zero is the "unset" sentinel in the wire format).
func nextID() uint64 {
	for {
		n := idState.counter.Add(1)
		if v := splitmix64(idState.seed + n); v != 0 {
			return v
		}
	}
}

// NewTraceID returns a fresh non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[:8], nextID())
	binary.BigEndian.PutUint64(t[8:], nextID())
	return t
}

// NewSpanID returns a fresh non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], nextID())
	return s
}

// SpanContext is the cross-process identity of a span: enough to parent a
// remote child to it.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether both IDs are non-zero.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// TraceparentHeader is the HTTP header used to propagate span context,
// following the W3C Trace Context wire format.
const TraceparentHeader = "traceparent"

// FormatTraceparent renders the span context in the W3C traceparent layout:
// version 00, 32 hex trace digits, 16 hex span digits, flags 01 (sampled).
func FormatTraceparent(sc SpanContext) string {
	return fmt.Sprintf("00-%s-%s-01", sc.Trace, sc.Span)
}

// ParseTraceparent parses a W3C-style traceparent value. It accepts any
// 2-hex version except the reserved "ff", ignores the flags octet, and
// rejects malformed or all-zero IDs — callers fall back to a fresh root.
func ParseTraceparent(v string) (SpanContext, error) {
	var sc SpanContext
	if len(v) < 55 {
		return sc, fmt.Errorf("traceparent: %q too short", v)
	}
	if v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return sc, fmt.Errorf("traceparent: %q malformed", v)
	}
	if len(v) > 55 && v[55] != '-' {
		// version 00 has exactly four fields; future versions may append
		// more, but only after another dash
		return sc, fmt.Errorf("traceparent: %q malformed", v)
	}
	ver := v[:2]
	if _, err := hex.DecodeString(ver); err != nil || ver == "ff" {
		return sc, fmt.Errorf("traceparent: bad version %q", ver)
	}
	if _, err := hex.Decode(sc.Trace[:], []byte(v[3:35])); err != nil {
		return sc, fmt.Errorf("traceparent: bad trace id in %q", v)
	}
	if _, err := hex.Decode(sc.Span[:], []byte(v[36:52])); err != nil {
		return sc, fmt.Errorf("traceparent: bad span id in %q", v)
	}
	if !sc.Valid() {
		return SpanContext{}, fmt.Errorf("traceparent: all-zero id in %q", v)
	}
	return sc, nil
}

// remoteCtxKey carries a remote parent SpanContext in a context.Context.
type remoteCtxKey struct{}

// ContextWithRemote returns a context carrying sc as the remote parent: the
// next span started from it joins sc's trace as a child of sc.Span. An
// invalid sc returns ctx unchanged (the next span is a fresh root).
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteCtxKey{}, sc)
}

// SpanContextFromContext returns the cross-process identity carried by ctx:
// the in-flight span's, or failing that a remote parent installed by
// ContextWithRemote. ok is false when ctx carries neither (e.g. telemetry
// disabled and no inbound header).
func SpanContextFromContext(ctx context.Context) (SpanContext, bool) {
	if sp := FromContext(ctx); sp != nil && sp.sc.Valid() {
		return sp.sc, true
	}
	if sc, ok := ctx.Value(remoteCtxKey{}).(SpanContext); ok && sc.Valid() {
		return sc, true
	}
	return SpanContext{}, false
}

// WithSpanFrom returns dst carrying whatever span identity src carries —
// used to graft trace parentage onto a fresh cancellation context (a result
// delivery on its own timeout, say) without inheriting src's deadline.
func WithSpanFrom(dst, src context.Context) context.Context {
	if sp := FromContext(src); sp != nil {
		return context.WithValue(dst, spanCtxKey{}, sp)
	}
	if sc, ok := src.Value(remoteCtxKey{}).(SpanContext); ok && sc.Valid() {
		return context.WithValue(dst, remoteCtxKey{}, sc)
	}
	return dst
}

// InjectTraceparent stamps ctx's span context onto h as a traceparent
// header. No-op when ctx carries no span identity.
func InjectTraceparent(ctx context.Context, h http.Header) {
	if sc, ok := SpanContextFromContext(ctx); ok {
		h.Set(TraceparentHeader, FormatTraceparent(sc))
	}
}

// ExtractTraceparent returns ctx extended with the remote parent carried by
// h's traceparent header. A missing or malformed header returns ctx
// unchanged, so the next span started from it is a fresh root — the
// required fallback for clients that don't speak the protocol.
func ExtractTraceparent(ctx context.Context, h http.Header) context.Context {
	sc, err := ParseTraceparent(h.Get(TraceparentHeader))
	if err != nil {
		return ctx
	}
	return ContextWithRemote(ctx, sc)
}
