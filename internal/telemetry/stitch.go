package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Trace stitching. `dfvar trace` reads the JSONL span streams written by
// -trace in several processes (a coordinator and its workers, say), joins
// them on span IDs into one cross-process tree, and reports where the wall
// clock actually went — coordinator wait vs worker compute vs network and
// retry time — plus any orphaned spans whose parent never showed up (a
// crashed process, a lost file, or a propagation bug).

// StitchSpan is one span parsed back from a JSONL trace file, with
// absolute unix-nanosecond timestamps.
type StitchSpan struct {
	TraceID      string
	SpanID       string
	ParentSpanID string
	Name         string
	Path         string
	StartNs      int64
	DurNs        int64
	Attrs        map[string]string
}

// TraceFile is one process's parsed trace stream.
type TraceFile struct {
	Path  string
	Proc  ProcessInfo
	Spans []StitchSpan
}

// ReadTraceFile parses a JSONL span stream written by FlushTrace. The
// first line must be the process-identity record; lines of unknown type
// are skipped so the format can grow.
func ReadTraceFile(path string) (*TraceFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	tf, err := readTrace(f)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	tf.Path = path
	return tf, nil
}

func readTrace(r io.Reader) (*TraceFile, error) {
	tf := &TraceFile{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := 0
	sawProc := false
	for sc.Scan() {
		n++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var line traceLine
		if err := json.Unmarshal([]byte(text), &line); err != nil {
			return nil, fmt.Errorf("line %d: %w", n, err)
		}
		switch line.Type {
		case "process":
			tf.Proc = ProcessInfo{PID: line.PID, Hostname: line.Hostname, Role: line.Role}
			sawProc = true
		case "span":
			if line.SpanID == "" {
				return nil, fmt.Errorf("line %d: span without span_id", n)
			}
			tf.Spans = append(tf.Spans, StitchSpan{
				TraceID:      line.TraceID,
				SpanID:       line.SpanID,
				ParentSpanID: line.ParentSpanID,
				Name:         line.Name,
				Path:         line.Path,
				StartNs:      line.StartUnixNs,
				DurNs:        line.DurNs,
				Attrs:        line.Attrs,
			})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawProc {
		return nil, fmt.Errorf("no process record (is this a -trace JSONL file?)")
	}
	return tf, nil
}

// StitchNode is one span wired into the merged cross-process tree.
type StitchNode struct {
	Span     StitchSpan
	Proc     *ProcessInfo // identity of the emitting process
	Parent   *StitchNode  // nil for roots and orphans
	Children []*StitchNode
}

// Stitch is the merged view over several processes' trace files.
type Stitch struct {
	Files []*TraceFile
	Nodes []*StitchNode
	// Roots are spans with no parent reference at all.
	Roots []*StitchNode
	// Orphans reference a parent span that appears in none of the files —
	// a crashed process, a missing file, or broken propagation. They are
	// rendered as extra roots but flagged.
	Orphans []*StitchNode
	// CrossProcessEdges counts child→parent links that span two processes.
	CrossProcessEdges int
	// DuplicateSpanIDs counts span IDs seen more than once across files.
	DuplicateSpanIDs int
}

// StitchTraces joins the given trace files on span IDs into one tree.
func StitchTraces(files []*TraceFile) *Stitch {
	st := &Stitch{Files: files}
	byID := map[string]*StitchNode{}
	for _, tf := range files {
		proc := &tf.Proc
		for i := range tf.Spans {
			n := &StitchNode{Span: tf.Spans[i], Proc: proc}
			st.Nodes = append(st.Nodes, n)
			if byID[n.Span.SpanID] != nil {
				st.DuplicateSpanIDs++
			} else {
				byID[n.Span.SpanID] = n
			}
		}
	}
	for _, n := range st.Nodes {
		if n.Span.ParentSpanID == "" {
			st.Roots = append(st.Roots, n)
			continue
		}
		parent := byID[n.Span.ParentSpanID]
		if parent == nil || parent == n {
			st.Orphans = append(st.Orphans, n)
			continue
		}
		n.Parent = parent
		parent.Children = append(parent.Children, n)
		if parent.Proc != n.Proc {
			st.CrossProcessEdges++
		}
	}
	order := func(ns []*StitchNode) {
		sort.SliceStable(ns, func(i, j int) bool { return ns[i].Span.StartNs < ns[j].Span.StartNs })
	}
	for _, n := range st.Nodes {
		order(n.Children)
	}
	order(st.Roots)
	order(st.Orphans)
	return st
}

// TraceIDs returns the distinct trace IDs present, sorted.
func (st *Stitch) TraceIDs() []string {
	set := map[string]bool{}
	for _, n := range st.Nodes {
		if n.Span.TraceID != "" {
			set[n.Span.TraceID] = true
		}
	}
	ids := make([]string, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// roleOf names a node's process for display.
func roleOf(n *StitchNode) string {
	if n.Proc.Role != "" {
		return n.Proc.Role
	}
	return fmt.Sprintf("pid%d", n.Proc.PID)
}

// stitchFlameNode aggregates merged-tree nodes sharing one name chain.
type stitchFlameNode struct {
	name     string
	role     string
	count    int
	totalNs  int64
	children map[string]*stitchFlameNode
}

// Flame renders the merged tree as a cross-process flame summary: nodes
// aggregated by their chain of span names from the root, each line showing
// the emitting role, call count, total wall-clock time, and share of the
// parent's time. Orphans aggregate under a flagged pseudo-root.
func (st *Stitch) Flame() string {
	root := &stitchFlameNode{children: map[string]*stitchFlameNode{}}
	var add func(agg *stitchFlameNode, n *StitchNode)
	add = func(agg *stitchFlameNode, n *StitchNode) {
		key := roleOf(n) + ":" + n.Span.Name
		child := agg.children[key]
		if child == nil {
			child = &stitchFlameNode{name: n.Span.Name, role: roleOf(n), children: map[string]*stitchFlameNode{}}
			agg.children[key] = child
		}
		child.count++
		child.totalNs += n.Span.DurNs
		for _, c := range n.Children {
			add(child, c)
		}
	}
	for _, n := range st.Roots {
		add(root, n)
	}
	orphanRoot := &stitchFlameNode{children: map[string]*stitchFlameNode{}}
	for _, n := range st.Orphans {
		add(orphanRoot, n)
	}

	var b strings.Builder
	b.WriteString("cross-process flame (wall-clock, aggregated by span chain)\n")
	if len(st.Nodes) == 0 {
		b.WriteString("  (no spans)\n")
		return b.String()
	}
	var render func(agg *stitchFlameNode, depth int, parentNs int64)
	render = func(agg *stitchFlameNode, depth int, parentNs int64) {
		kids := make([]*stitchFlameNode, 0, len(agg.children))
		for _, c := range agg.children {
			kids = append(kids, c)
		}
		sort.Slice(kids, func(i, j int) bool {
			if kids[i].totalNs != kids[j].totalNs {
				return kids[i].totalNs > kids[j].totalNs
			}
			return kids[i].name < kids[j].name
		})
		for _, c := range kids {
			share := ""
			if parentNs > 0 {
				share = fmt.Sprintf("  %5.1f%%", 100*float64(c.totalNs)/float64(parentNs))
			}
			width := 34 - 2*depth
			if width < 1 {
				width = 1
			}
			fmt.Fprintf(&b, "  %s%-*s %-12s ×%-5d %8s%s\n",
				strings.Repeat("  ", depth), width, c.name, c.role, c.count,
				fmtSeconds(float64(c.totalNs)/1e9), share)
			render(c, depth+1, c.totalNs)
		}
	}
	render(root, 0, 0)
	if len(st.Orphans) > 0 {
		fmt.Fprintf(&b, "  ! orphaned subtrees (parent span missing):\n")
		render(orphanRoot, 1, 0)
	}
	return b.String()
}

// Breakdown reports where the merged trace's wall clock went. For
// distributed campaigns it splits lease lifetimes into worker compute
// (dist/simulate), network/retry (dist/deliver + dist/rpc/*), and
// coordinator-side wait (lease lifetime minus the worker's execution);
// otherwise it falls back to per-role totals of root spans.
func (st *Stitch) Breakdown() string {
	sumByName := map[string]int64{}
	cntByName := map[string]int{}
	var rpcNs int64
	var rpcCnt int
	for _, n := range st.Nodes {
		sumByName[n.Span.Name] += n.Span.DurNs
		cntByName[n.Span.Name]++
		if strings.HasPrefix(n.Span.Name, SpanDistRPCPrefix) {
			rpcNs += n.Span.DurNs
			rpcCnt++
		}
	}
	var b strings.Builder
	b.WriteString("time breakdown\n")
	line := func(indent int, label string, ns int64, count int, note string) {
		cnt := ""
		if count > 0 {
			cnt = fmt.Sprintf(" ×%d", count)
		}
		if note != "" {
			note = "  (" + note + ")"
		}
		fmt.Fprintf(&b, "  %s%-*s %8s%s%s\n", strings.Repeat("  ", indent), 34-2*indent, label,
			fmtSeconds(float64(ns)/1e9), cnt, note)
	}
	if cntByName[SpanDistUnit] > 0 {
		unitNs := sumByName[SpanDistUnit]
		execNs := sumByName[SpanDistUnitExec]
		waitNs := unitNs - execNs
		if waitNs < 0 {
			waitNs = 0
		}
		if c := cntByName[SpanCampaign]; c > 0 {
			line(0, "campaign (coordinator)", sumByName[SpanCampaign], c, "")
		}
		line(0, "lease lifetimes Σ", unitNs, cntByName[SpanDistUnit], "grant → result")
		line(1, "worker execution Σ", execNs, cntByName[SpanDistUnitExec], "")
		line(2, "simulate", sumByName[SpanDistSimulate], cntByName[SpanDistSimulate], "worker compute")
		line(2, "deliver", sumByName[SpanDistDeliver], cntByName[SpanDistDeliver], "network/retry")
		line(1, "coordinator-side wait Σ", waitNs, 0, "lease − worker execution")
		if rpcCnt > 0 {
			line(0, "coordinator RPC handling Σ", rpcNs, rpcCnt, "dist/rpc/*")
		}
		return b.String()
	}
	// generic fallback: root spans per role
	byRole := map[string]int64{}
	cnt := map[string]int{}
	for _, n := range st.Roots {
		byRole[roleOf(n)] += n.Span.DurNs
		cnt[roleOf(n)]++
	}
	roles := make([]string, 0, len(byRole))
	for role := range byRole {
		roles = append(roles, role)
	}
	sort.Strings(roles)
	for _, role := range roles {
		line(0, "root spans: "+role, byRole[role], cnt[role], "")
	}
	return b.String()
}

// StitchProcess summarizes one input file for the machine-readable report.
type StitchProcess struct {
	File     string `json:"file"`
	PID      int    `json:"pid"`
	Hostname string `json:"hostname"`
	Role     string `json:"role,omitempty"`
	Spans    int    `json:"spans"`
}

// StitchSummary is the machine-readable stitch report (`dfvar trace
// -json`); CI asserts on roots, orphans, and cross_process_edges.
type StitchSummary struct {
	Files             []StitchProcess    `json:"files"`
	Spans             int                `json:"spans"`
	Traces            []string           `json:"traces"`
	Roots             int                `json:"roots"`
	RootNames         []string           `json:"root_names"`
	Orphans           int                `json:"orphans"`
	OrphanNames       []string           `json:"orphan_names,omitempty"`
	CrossProcessEdges int                `json:"cross_process_edges"`
	DuplicateSpanIDs  int                `json:"duplicate_span_ids"`
	ByRoleSeconds     map[string]float64 `json:"by_role_seconds"`
}

// Summary builds the machine-readable report.
func (st *Stitch) Summary() StitchSummary {
	s := StitchSummary{
		Spans:             len(st.Nodes),
		Traces:            st.TraceIDs(),
		Roots:             len(st.Roots),
		Orphans:           len(st.Orphans),
		CrossProcessEdges: st.CrossProcessEdges,
		DuplicateSpanIDs:  st.DuplicateSpanIDs,
		ByRoleSeconds:     map[string]float64{},
	}
	for _, tf := range st.Files {
		s.Files = append(s.Files, StitchProcess{
			File: tf.Path, PID: tf.Proc.PID, Hostname: tf.Proc.Hostname,
			Role: tf.Proc.Role, Spans: len(tf.Spans),
		})
	}
	names := map[string]bool{}
	for _, n := range st.Roots {
		if !names[n.Span.Name] {
			names[n.Span.Name] = true
			s.RootNames = append(s.RootNames, n.Span.Name)
		}
	}
	sort.Strings(s.RootNames)
	names = map[string]bool{}
	for _, n := range st.Orphans {
		if !names[n.Span.Name] {
			names[n.Span.Name] = true
			s.OrphanNames = append(s.OrphanNames, n.Span.Name)
		}
	}
	sort.Strings(s.OrphanNames)
	for _, n := range st.Nodes {
		s.ByRoleSeconds[roleOf(n)] += float64(n.Span.DurNs) / 1e9
	}
	return s
}

// Report renders the full human-readable stitch report: process table,
// trace inventory, cross-process flame, time breakdown, and orphan flags.
func (st *Stitch) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stitched %d file(s), %d spans, %d trace(s)\n",
		len(st.Files), len(st.Nodes), len(st.TraceIDs()))
	for _, tf := range st.Files {
		role := tf.Proc.Role
		if role == "" {
			role = "?"
		}
		fmt.Fprintf(&b, "  %-12s pid %-7d %-16s %4d spans  %s\n",
			role, tf.Proc.PID, tf.Proc.Hostname, len(tf.Spans), tf.Path)
	}
	fmt.Fprintf(&b, "roots: %d, cross-process edges: %d, orphans: %d\n",
		len(st.Roots), st.CrossProcessEdges, len(st.Orphans))
	b.WriteString(st.Flame())
	b.WriteString(st.Breakdown())
	if len(st.Orphans) > 0 {
		fmt.Fprintf(&b, "WARNING: %d orphaned span(s) — parent missing from the supplied files:\n", len(st.Orphans))
		const maxList = 10
		for i, n := range st.Orphans {
			if i == maxList {
				fmt.Fprintf(&b, "  … and %d more\n", len(st.Orphans)-maxList)
				break
			}
			fmt.Fprintf(&b, "  %s (%s) missing parent %s\n", n.Span.Name, roleOf(n), n.Span.ParentSpanID)
		}
	}
	if st.DuplicateSpanIDs > 0 {
		fmt.Fprintf(&b, "WARNING: %d duplicate span ID(s) across files\n", st.DuplicateSpanIDs)
	}
	return b.String()
}

// MergedTraceEvents renders every input file's spans as one Chrome
// trace-event stream on a shared absolute timeline, one process block per
// input file, orphans flagged with a distinct category.
func (st *Stitch) MergedTraceEvents(w io.Writer) error {
	orphan := map[*StitchNode]bool{}
	for _, n := range st.Orphans {
		orphan[n] = true
	}
	var events []traceEvent
	for _, tf := range st.Files {
		role := tf.Proc.Role
		if role == "" {
			role = "process"
		}
		events = append(events, traceEvent{
			Name: "process_name", Ph: "M", PID: tf.Proc.PID,
			Args: map[string]any{"name": fmt.Sprintf("%s (%s, pid %d)", role, tf.Proc.Hostname, tf.Proc.PID)},
		})
	}
	// lanes: each node inherits its highest in-process ancestor's span ID
	lane := map[*StitchNode]int64{}
	var laneOf func(n *StitchNode) int64
	laneOf = func(n *StitchNode) int64 {
		if v, ok := lane[n]; ok {
			return v
		}
		var v int64
		if n.Parent != nil && n.Parent.Proc == n.Proc {
			v = laneOf(n.Parent)
		} else {
			// stable small lane from the span ID hex
			for _, c := range n.Span.SpanID {
				v = v<<4 | int64(hexVal(byte(c)))
			}
			if v < 0 {
				v = -v
			}
		}
		lane[n] = v
		return v
	}
	for _, n := range st.Nodes {
		cat := "span"
		if orphan[n] {
			cat = "orphan"
		}
		args := map[string]any{"trace_id": n.Span.TraceID, "span_id": n.Span.SpanID}
		if n.Span.ParentSpanID != "" {
			args["parent_span_id"] = n.Span.ParentSpanID
		}
		for k, v := range n.Span.Attrs {
			args[k] = v
		}
		events = append(events, traceEvent{
			Name: n.Span.Name, Ph: "X", Cat: cat,
			PID: n.Proc.PID, TID: laneOf(n),
			Ts: float64(n.Span.StartNs) / 1e3, Dur: float64(n.Span.DurNs) / 1e3,
			Args: args,
		})
	}
	return json.NewEncoder(w).Encode(traceEventFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return 0
}
