package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
)

// ServePprof starts an HTTP server on addr exposing net/http/pprof (CPU,
// heap, goroutine, block profiles) plus /telemetry, which serves the live
// registry snapshot as JSON, and /metrics, the same snapshot in the
// Prometheus/OpenMetrics text exposition format (any Prometheus-compatible
// scraper can watch a running campaign, including the monitor's live
// gauges). It returns after the listener is bound, so a bad address fails
// fast instead of racing the workload; the server itself runs until the
// process exits. Intended for the CLIs' -pprof flag.
func ServePprof(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("telemetry: pprof listen: %w", err)
	}
	mux := newPprofMux()
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: pprof server: %v\n", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "pprof + /telemetry + /metrics serving on http://%s/debug/pprof/\n", ln.Addr())
	return nil
}

// newPprofMux builds the diagnostic mux ServePprof serves; split out so
// tests can exercise the endpoints without a real listener.
func newPprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// Active() may be nil (pprof without -telemetry): serve the empty
		// snapshot rather than erroring
		if err := Active().Snapshot().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := Active().Snapshot().WriteOpenMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}
