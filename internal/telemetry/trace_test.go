package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	v := FormatTraceparent(sc)
	if len(v) != 55 || !strings.HasPrefix(v, "00-") || !strings.HasSuffix(v, "-01") {
		t.Fatalf("unexpected traceparent layout: %q", v)
	}
	got, err := ParseTraceparent(v)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", v, err)
	}
	if got != sc {
		t.Fatalf("round trip mismatch: sent %+v got %+v", sc, got)
	}
}

func TestTraceparentMalformed(t *testing.T) {
	valid := FormatTraceparent(SpanContext{Trace: NewTraceID(), Span: NewSpanID()})
	bad := []string{
		"",
		"garbage",
		valid[:54],                         // truncated
		strings.Replace(valid, "-", "_", 1), // wrong separators
		"zz" + valid[2:],                    // non-hex version
		"ff" + valid[2:],                    // reserved version
		"00-" + strings.Repeat("0", 32) + valid[35:],            // all-zero trace id
		valid[:36] + strings.Repeat("0", 16) + valid[52:],       // all-zero span id
		valid[:3] + "xx" + valid[5:],                            // non-hex trace id
		valid + "tail",                                          // trailing junk without a dash
	}
	for _, v := range bad {
		if _, err := ParseTraceparent(v); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", v)
		}
	}
	// future version with extra fields after another dash is accepted
	if _, err := ParseTraceparent("01" + valid[2:] + "-extra"); err != nil {
		t.Errorf("ParseTraceparent rejected future-versioned value: %v", err)
	}
}

// TestExtractMalformedFallsBackToFreshRoot is the required malformed-header
// fallback: a request with a broken traceparent must start a fresh root
// trace, not inherit garbage.
func TestExtractMalformedFallsBackToFreshRoot(t *testing.T) {
	r := New()
	h := http.Header{}
	h.Set(TraceparentHeader, "00-borked-borked-01")
	ctx := ExtractTraceparent(context.Background(), h)
	_, sp := StartIn(r, ctx, "req")
	sp.End()
	recs := r.Snapshot().Spans
	if len(recs) != 1 {
		t.Fatalf("got %d spans, want 1", len(recs))
	}
	if recs[0].ParentSpanID != "" || recs[0].Parent != 0 {
		t.Fatalf("malformed header produced a parented span: %+v", recs[0])
	}
	if recs[0].TraceID == "" || recs[0].TraceID == strings.Repeat("0", 32) {
		t.Fatalf("fresh root got no trace ID: %+v", recs[0])
	}
}

func TestExtractValidHeaderJoinsRemoteTrace(t *testing.T) {
	r := New()
	remote := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	h := http.Header{}
	h.Set(TraceparentHeader, FormatTraceparent(remote))
	ctx := ExtractTraceparent(context.Background(), h)
	_, sp := StartIn(r, ctx, "req")
	sp.End()
	rec := r.Snapshot().Spans[0]
	if rec.TraceID != remote.Trace.String() {
		t.Fatalf("trace ID not inherited: got %s want %s", rec.TraceID, remote.Trace)
	}
	if rec.ParentSpanID != remote.Span.String() {
		t.Fatalf("remote parent not linked: got %s want %s", rec.ParentSpanID, remote.Span)
	}
	if rec.Parent != 0 {
		t.Fatalf("remote-parented span must be a local root, got local parent %d", rec.Parent)
	}
}

func TestInjectTraceparent(t *testing.T) {
	r := New()
	ctx, sp := StartIn(r, context.Background(), "op")
	h := http.Header{}
	InjectTraceparent(ctx, h)
	sc, ok := sp.SpanContext()
	if !ok {
		t.Fatal("live span has no span context")
	}
	if got := h.Get(TraceparentHeader); got != FormatTraceparent(sc) {
		t.Fatalf("injected %q, want %q", got, FormatTraceparent(sc))
	}
	// no identity → no header
	h2 := http.Header{}
	InjectTraceparent(context.Background(), h2)
	if h2.Get(TraceparentHeader) != "" {
		t.Fatalf("header injected from an empty context: %q", h2.Get(TraceparentHeader))
	}
}

func TestWithSpanFrom(t *testing.T) {
	r := New()
	src, sp := StartIn(r, context.Background(), "op")
	defer sp.End()
	dst, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	got, ok := SpanContextFromContext(WithSpanFrom(dst, src))
	want, _ := sp.SpanContext()
	if !ok || got != want {
		t.Fatalf("WithSpanFrom lost the span identity: got %+v ok=%v want %+v", got, ok, want)
	}
	// remote-only source carries too
	remote := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	src2 := ContextWithRemote(context.Background(), remote)
	got2, ok2 := SpanContextFromContext(WithSpanFrom(context.Background(), src2))
	if !ok2 || got2 != remote {
		t.Fatalf("WithSpanFrom lost the remote identity: got %+v ok=%v", got2, ok2)
	}
}

// TestConcurrentSpanIDUniqueness exercises ID generation from many
// goroutines under -race and requires global uniqueness.
func TestConcurrentSpanIDUniqueness(t *testing.T) {
	r := New()
	const goroutines = 16
	const perG = 200
	var wg sync.WaitGroup
	ids := make([][]string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ctx, parent := StartIn(r, context.Background(), "parent")
				_, child := StartIn(r, ctx, "child")
				psc, _ := parent.SpanContext()
				csc, _ := child.SpanContext()
				ids[g] = append(ids[g], psc.Span.String(), csc.Span.String())
				child.End()
				parent.End()
			}
		}(g)
	}
	wg.Wait()
	seen := map[string]bool{}
	for _, batch := range ids {
		for _, id := range batch {
			if seen[id] {
				t.Fatalf("duplicate span ID %s", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != goroutines*perG*2 {
		t.Fatalf("got %d distinct IDs, want %d", len(seen), goroutines*perG*2)
	}
}

func TestSpanLinkageAndAttrs(t *testing.T) {
	r := New()
	ctx, root := StartIn(r, context.Background(), "campaign")
	_, child := StartIn(r, ctx, "round")
	child.SetAttr("round", "1")
	child.End()
	root.SetAttr("units", "12")
	root.End()
	root.End() // idempotent: must not record a duplicate
	recs := r.Snapshot().Spans
	if len(recs) != 2 {
		t.Fatalf("got %d spans, want 2 (End must be idempotent)", len(recs))
	}
	var rootRec, childRec SpanRecord
	for _, rec := range recs {
		switch rec.Name {
		case "campaign":
			rootRec = rec
		case "round":
			childRec = rec
		}
	}
	if childRec.TraceID != rootRec.TraceID {
		t.Fatalf("child trace %s != root trace %s", childRec.TraceID, rootRec.TraceID)
	}
	if childRec.ParentSpanID != rootRec.SpanID {
		t.Fatalf("child parent_span_id %s != root span_id %s", childRec.ParentSpanID, rootRec.SpanID)
	}
	if childRec.Attrs["round"] != "1" || rootRec.Attrs["units"] != "12" {
		t.Fatalf("attrs lost: root=%v child=%v", rootRec.Attrs, childRec.Attrs)
	}
}

func TestTraceExportAndStitch(t *testing.T) {
	// two registries standing in for two processes sharing one trace
	coord := New()
	coord.SetRole("coordinator")
	worker := New()
	worker.SetRole("worker")

	cctx, campaign := StartIn(coord, context.Background(), SpanCampaign)
	uctx, unit := StartIn(coord, cctx, SpanDistUnit)
	unit.SetAttr("unit", "3")

	// worker joins via the wire format
	sc, _ := FromContext(uctx).SpanContext()
	wctx := ContextWithRemote(context.Background(), sc)
	_, exec := StartIn(worker, wctx, SpanDistUnitExec)
	exec.SetAttr("worker", "w1")
	exec.End()
	unit.End()
	campaign.End()

	dir := t.TempDir()
	var paths []string
	for name, r := range map[string]*Registry{"coord": coord, "worker": worker} {
		snap := r.Snapshot()
		var buf bytes.Buffer
		if err := snap.WriteSpanJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name+".trace")
		if err := writeFileWith(p, snap.WriteSpanJSONL); err != nil {
			t.Fatal(err)
		}
		// the chrome rendering must be valid JSON with one event per span
		// plus process metadata
		var chrome bytes.Buffer
		if err := snap.WriteTraceEvents(&chrome); err != nil {
			t.Fatal(err)
		}
		var tf traceEventFile
		if err := json.Unmarshal(chrome.Bytes(), &tf); err != nil {
			t.Fatalf("chrome trace not JSON: %v", err)
		}
		if len(tf.TraceEvents) != len(snap.Spans)+1 {
			t.Fatalf("chrome events %d, want %d spans + 1 metadata", len(tf.TraceEvents), len(snap.Spans))
		}
		paths = append(paths, p)
	}

	var files []*TraceFile
	for _, p := range paths {
		tf, err := ReadTraceFile(p)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, tf)
	}
	st := StitchTraces(files)
	sum := st.Summary()
	if sum.Spans != 3 || sum.Roots != 1 || sum.Orphans != 0 {
		t.Fatalf("summary %+v: want 3 spans, 1 root, 0 orphans", sum)
	}
	if sum.CrossProcessEdges != 1 {
		t.Fatalf("cross-process edges %d, want 1", sum.CrossProcessEdges)
	}
	if len(sum.Traces) != 1 {
		t.Fatalf("trace count %d, want 1", len(sum.Traces))
	}
	if len(sum.RootNames) != 1 || sum.RootNames[0] != SpanCampaign {
		t.Fatalf("root names %v, want [%s]", sum.RootNames, SpanCampaign)
	}
	report := st.Report()
	for _, want := range []string{"coordinator", "worker", SpanDistUnitExec, "cross-process flame"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	var merged bytes.Buffer
	if err := st.MergedTraceEvents(&merged); err != nil {
		t.Fatal(err)
	}
	var tf traceEventFile
	if err := json.Unmarshal(merged.Bytes(), &tf); err != nil {
		t.Fatalf("merged chrome trace not JSON: %v", err)
	}
	if len(tf.TraceEvents) != 3+2 {
		t.Fatalf("merged events %d, want 3 spans + 2 metadata", len(tf.TraceEvents))
	}
}

func TestStitchFlagsOrphans(t *testing.T) {
	r := New()
	r.SetRole("worker")
	remote := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	_, sp := StartIn(r, ContextWithRemote(context.Background(), remote), SpanDistUnitExec)
	sp.End()
	snap := r.Snapshot()
	dir := t.TempDir()
	p := filepath.Join(dir, "w.trace")
	if err := writeFileWith(p, snap.WriteSpanJSONL); err != nil {
		t.Fatal(err)
	}
	tf, err := ReadTraceFile(p)
	if err != nil {
		t.Fatal(err)
	}
	st := StitchTraces([]*TraceFile{tf})
	if len(st.Orphans) != 1 || len(st.Roots) != 0 {
		t.Fatalf("orphans=%d roots=%d, want 1/0", len(st.Orphans), len(st.Roots))
	}
	if !strings.Contains(st.Report(), "orphaned span") {
		t.Fatalf("report does not flag the orphan:\n%s", st.Report())
	}
	sum := st.Summary()
	if sum.Orphans != 1 || len(sum.OrphanNames) != 1 {
		t.Fatalf("summary %+v: want 1 orphan", sum)
	}
}

func TestSnapshotCarriesProcessIdentity(t *testing.T) {
	r := New()
	r.SetRole("coordinator")
	snap := r.Snapshot()
	if snap.Process.PID <= 0 {
		t.Fatalf("snapshot pid %d", snap.Process.PID)
	}
	if snap.Process.Role != "coordinator" {
		t.Fatalf("snapshot role %q", snap.Process.Role)
	}
	if snap.Process.StartedAt.IsZero() {
		t.Fatal("snapshot start time missing")
	}
	// identity must round-trip through JSON
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Process.PID != snap.Process.PID || back.Process.Role != snap.Process.Role {
		t.Fatalf("process identity lost in JSON: %+v", back.Process)
	}
}

func TestFlushTraceWritesBothArtifacts(t *testing.T) {
	r := New()
	r.SetRole("test")
	Enable(r)
	defer Disable()
	_, sp := Start(context.Background(), "op")
	sp.End()
	p := filepath.Join(t.TempDir(), "out.trace")
	if err := FlushTrace(p); err != nil {
		t.Fatal(err)
	}
	tf, err := ReadTraceFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tf.Spans) != 1 || tf.Proc.Role != "test" {
		t.Fatalf("trace file %+v", tf)
	}
	blob, err := os.ReadFile(p + TraceEventsSuffix)
	if err != nil {
		t.Fatal(err)
	}
	var chrome traceEventFile
	if err := json.Unmarshal(blob, &chrome); err != nil {
		t.Fatalf("chrome artifact not JSON: %v", err)
	}
}
