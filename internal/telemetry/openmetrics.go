package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promName sanitizes a registry metric name into the Prometheus data model:
// [a-zA-Z_:][a-zA-Z0-9_:]*. The repository's slash-separated names become
// underscore-separated ("cluster/runs_total" → "cluster_runs_total").
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects (shortest exact
// decimal; no exponent surprises for integers).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteOpenMetrics renders the snapshot in the Prometheus text exposition
// format (version 0.0.4, which OpenMetrics scrapers also ingest), ending
// with the OpenMetrics "# EOF" terminator: counters and gauges as single
// samples, histograms as cumulative le-labeled buckets plus _sum and
// _count. Metric families are sorted by name so the output is stable for
// diffing and testing.
func (s *Snapshot) WriteOpenMetrics(w io.Writer) error {
	// Collect families first: registry names are unique per kind, but two
	// kinds could sanitize to the same Prometheus name; suffix a collision
	// rather than emit a duplicate family.
	type family struct {
		name  string
		lines []string
		typ   string
	}
	var fams []family
	seen := map[string]bool{}
	uniq := func(n string) string {
		for seen[n] {
			n += "_"
		}
		seen[n] = true
		return n
	}

	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := uniq(promName(n))
		fams = append(fams, family{pn, []string{fmt.Sprintf("%s %d", pn, s.Counters[n])}, "counter"})
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := uniq(promName(n))
		fams = append(fams, family{pn, []string{fmt.Sprintf("%s %s", pn, promFloat(s.Gauges[n]))}, "gauge"})
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		pn := uniq(promName(n))
		lines := make([]string, 0, len(h.Bounds)+3)
		cum := int64(0)
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			lines = append(lines, fmt.Sprintf("%s_bucket{le=%q} %d", pn, promFloat(bound), cum))
		}
		lines = append(lines,
			fmt.Sprintf("%s_bucket{le=\"+Inf\"} %d", pn, h.Count),
			fmt.Sprintf("%s_sum %s", pn, promFloat(h.Sum)),
			fmt.Sprintf("%s_count %d", pn, h.Count),
		)
		fams = append(fams, family{pn, lines, "histogram"})
	}

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, line := range f.lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}
