package telemetry

import (
	"bytes"
	"context"
	"io"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promLine matches one sample line of the text exposition format:
// name{labels} value — labels optional, value a Go-parseable float.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="[^"]+"\})? (\S+)$`)

// parseProm is a minimal exposition-format validator: every line must be a
// # TYPE comment, a valid sample, or the # EOF terminator (which must come
// last). Returns the sample values by full line key and the TYPE by family.
func parseProm(t *testing.T, text string) (samples map[string]float64, types map[string]string) {
	t.Helper()
	samples = map[string]float64{}
	types = map[string]string{}
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	for i, line := range lines {
		switch {
		case line == "# EOF":
			if i != len(lines)-1 {
				t.Fatalf("# EOF at line %d is not last", i)
			}
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[fields[2]] = fields[3]
		default:
			m := promLine.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed sample line %q", line)
			}
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
			samples[m[1]+m[2]] = v
		}
	}
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatal("exposition does not end with # EOF")
	}
	return samples, types
}

func TestWriteOpenMetrics(t *testing.T) {
	r := New()
	r.Counter("cluster/runs_total").Add(42)
	r.Gauge("monitor/gap_fraction").Set(0.125)
	h := r.Histogram("cluster/run_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.Snapshot().WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if strings.Contains(text, "/") {
		t.Errorf("exposition contains unsanitized '/':\n%s", text)
	}
	samples, types := parseProm(t, text)

	if samples["cluster_runs_total"] != 42 {
		t.Errorf("counter sample = %v, want 42", samples["cluster_runs_total"])
	}
	if types["cluster_runs_total"] != "counter" {
		t.Errorf("counter TYPE = %q", types["cluster_runs_total"])
	}
	if samples["monitor_gap_fraction"] != 0.125 {
		t.Errorf("gauge sample = %v, want 0.125", samples["monitor_gap_fraction"])
	}
	if types["monitor_gap_fraction"] != "gauge" {
		t.Errorf("gauge TYPE = %q", types["monitor_gap_fraction"])
	}
	if types["cluster_run_seconds"] != "histogram" {
		t.Errorf("histogram TYPE = %q", types["cluster_run_seconds"])
	}
	// Cumulative, monotonic buckets ending at +Inf == count.
	want := map[string]float64{
		`cluster_run_seconds_bucket{le="0.1"}`:  1,
		`cluster_run_seconds_bucket{le="1"}`:    3,
		`cluster_run_seconds_bucket{le="10"}`:   4,
		`cluster_run_seconds_bucket{le="+Inf"}`: 5,
		"cluster_run_seconds_count":             5,
		"cluster_run_seconds_sum":               55.55 + 0.5, // 0.05+0.5+0.5+5+50
	}
	for k, v := range want {
		got, ok := samples[k]
		if !ok {
			t.Errorf("missing sample %q", k)
			continue
		}
		if math.Abs(got-v) > 1e-9 {
			t.Errorf("%s = %v, want %v", k, got, v)
		}
	}
}

func TestOpenMetricsEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	var r *Registry
	if err := r.Snapshot().WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "# EOF\n" {
		t.Errorf("empty snapshot = %q, want just the EOF terminator", buf.String())
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"cluster/runs_total": "cluster_runs_total",
		"9lives":             "_lives",
		"a-b.c":              "a_b_c",
		"ok_name:sub":        "ok_name:sub",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestMetricsEndpoint drives the /metrics handler end to end: enable a
// registry with campaign-style metrics and monitor-style gauges, scrape,
// and parse what comes back.
func TestMetricsEndpoint(t *testing.T) {
	r := New()
	Enable(r)
	defer Disable()
	C(MClusterRuns).Add(7)
	G(GMonitorHot).Set(2)
	G(GMonitorMaxStall).Set(0.4)
	H(MClusterRunSecs, SecondsBuckets).Observe(1.5)
	_, sp := Start(context.Background(), SpanCampaign)
	sp.End()

	srv := httptest.NewServer(newPprofMux())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, _ := parseProm(t, string(blob))
	if samples["cluster_runs_total"] != 7 {
		t.Errorf("scraped cluster_runs_total = %v, want 7", samples["cluster_runs_total"])
	}
	if samples["monitor_hot_routers"] != 2 {
		t.Errorf("scraped monitor_hot_routers = %v, want 2", samples["monitor_hot_routers"])
	}
	if samples["monitor_max_group_stall_ratio"] != 0.4 {
		t.Errorf("scraped monitor_max_group_stall_ratio = %v", samples["monitor_max_group_stall_ratio"])
	}
	if samples["cluster_run_seconds_count"] != 1 {
		t.Errorf("scraped histogram count = %v, want 1", samples["cluster_run_seconds_count"])
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("q", []float64{10, 20, 30})
	// 10 observations uniform in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	snap := r.Snapshot().Histograms["q"]
	// p50: rank 10 lands at the top of the first bucket → 10.
	if got := snap.Quantile(0.5); math.Abs(got-10) > 1e-9 {
		t.Errorf("p50 = %v, want 10", got)
	}
	// p75: rank 15 → halfway through the second bucket → 15.
	if got := snap.Quantile(0.75); math.Abs(got-15) > 1e-9 {
		t.Errorf("p75 = %v, want 15", got)
	}
	// p100 → top of the last occupied bucket.
	if got := snap.Quantile(1); math.Abs(got-20) > 1e-9 {
		t.Errorf("p100 = %v, want 20", got)
	}
	// q clamps.
	if got := snap.Quantile(-1); got > snap.Quantile(0.01) {
		t.Errorf("q<0 not clamped: %v", got)
	}

	// Overflow-bucket estimates return the last finite bound.
	h2 := r.Histogram("q2", []float64{1, 2})
	h2.Observe(100)
	snap2 := r.Snapshot().Histograms["q2"]
	if got := snap2.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %v, want last bound 2", got)
	}

	// Empty histogram.
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

// TestSummaryQuantiles checks the stderr summary now carries percentile
// columns for histograms.
func TestSummaryQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("work/run_seconds", SecondsBuckets)
	for i := 0; i < 100; i++ {
		h.Observe(0.01 * float64(i+1))
	}
	sum := r.Snapshot().Summary()
	for _, want := range []string{"p50=", "p95=", "p99="} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

// TestQuantileMatchesExactForPointMasses: when every observation sits on a
// bucket bound the interpolation is exact at the bucket tops.
func TestQuantileMatchesExactForPointMasses(t *testing.T) {
	r := New()
	bounds := make([]float64, 100)
	for i := range bounds {
		bounds[i] = float64(i + 1)
	}
	h := r.Histogram("exact", bounds)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	snap := r.Snapshot().Histograms["exact"]
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		want := q * 100
		if got := snap.Quantile(q); math.Abs(got-want) > 1 {
			t.Errorf("Quantile(%v) = %v, want ≈%v (±1 bucket width)", q, got, want)
		}
	}
}
