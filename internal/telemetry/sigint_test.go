package telemetry

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestSigintSnapshotPath exercises the CLIs' -telemetry interrupt path: a
// workload under signal.NotifyContext is interrupted by a real SIGINT, and
// the deferred Flush must still produce a complete, loadable snapshot of
// everything recorded up to the interruption.
func TestSigintSnapshotPath(t *testing.T) {
	r := New()
	Enable(r)
	defer Disable()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The "workload": record metrics until cancellation, like a campaign
	// round loop does.
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, sp := Start(ctx, SpanCampaign)
		defer sp.End()
		for {
			select {
			case <-ctx.Done():
				return
			default:
				C(MClusterRuns).Inc()
				H(MClusterRunSecs, SecondsBuckets).Observe(0.001)
				time.Sleep(time.Millisecond)
			}
		}
	}()

	// Let it record something, then interrupt the whole process the way a
	// ^C would.
	time.Sleep(20 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("workload did not observe the SIGINT cancellation")
	}
	stop() // restore default handling before any later test signals

	path := filepath.Join(t.TempDir(), "sigint.json")
	if err := Flush(path); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters[MClusterRuns] == 0 {
		t.Error("interrupted snapshot lost the run counter")
	}
	h := snap.Histograms[MClusterRunSecs]
	if h.Count == 0 || h.Count != snap.Counters[MClusterRuns] {
		t.Errorf("histogram count %d does not match counter %d", h.Count, snap.Counters[MClusterRuns])
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != SpanCampaign {
		t.Errorf("interrupted snapshot spans = %+v, want the closed campaign span", snap.Spans)
	}
}

// TestConcurrentSpanNesting runs many goroutines each building a nested
// span chain through its own context; under -race this proves the span
// machinery is concurrency-safe, and the assertions prove no cross-goroutine
// parent leakage (contexts, not globals, carry the parent).
func TestConcurrentSpanNesting(t *testing.T) {
	r := New()
	const goroutines = 16
	const depth = 3
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			root := fmt.Sprintf("worker%d", g)
			ctx, sp := StartIn(r, ctx, root)
			spans := []*Span{sp}
			for d := 1; d < depth; d++ {
				ctx, sp = StartIn(r, ctx, fmt.Sprintf("stage%d", d))
				spans = append(spans, sp)
			}
			for i := len(spans) - 1; i >= 0; i-- {
				spans[i].End()
			}
		}(g)
	}
	wg.Wait()

	spans := r.Snapshot().Spans
	if len(spans) != goroutines*depth {
		t.Fatalf("got %d spans, want %d", len(spans), goroutines*depth)
	}
	byID := map[int64]SpanRecord{}
	ids := map[int64]bool{}
	for _, sp := range spans {
		if ids[sp.ID] {
			t.Fatalf("duplicate span id %d", sp.ID)
		}
		ids[sp.ID] = true
		byID[sp.ID] = sp
	}
	for _, sp := range spans {
		if sp.Parent == 0 {
			if sp.Path != sp.Name {
				t.Errorf("root span path = %q, want %q", sp.Path, sp.Name)
			}
			continue
		}
		parent, ok := byID[sp.Parent]
		if !ok {
			t.Errorf("span %d has unknown parent %d", sp.ID, sp.Parent)
			continue
		}
		// the child's chain stays inside its own goroutine's worker tree
		if want := parent.Path + "/" + sp.Name; sp.Path != want {
			t.Errorf("span path = %q, want %q", sp.Path, want)
		}
	}
	// every goroutine contributed exactly one root and one full chain
	roots := 0
	for _, sp := range spans {
		if sp.Parent == 0 {
			roots++
		}
	}
	if roots != goroutines {
		t.Errorf("got %d root spans, want %d", roots, goroutines)
	}
}
