package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// HistogramSnapshot is one histogram's frozen state. Counts has
// len(Bounds)+1 entries; Counts[i] holds observations ≤ Bounds[i] (and
// above the previous bound), and the final entry counts the overflow above
// every bound — kept separate so the JSON never contains an infinity.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean returns the mean observation, or 0 when empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the fixed buckets, the way histogram_quantile does: the estimate
// assumes observations spread uniformly inside their bucket, so its error
// is bounded by the bucket width. An estimate landing in the overflow
// bucket returns the last bound (there is no finite upper edge to
// interpolate toward). Returns 0 when the histogram is empty.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := 0.0
	for i, ci := range h.Counts {
		c := float64(ci)
		if cum+c >= rank && c > 0 {
			if i == len(h.Bounds) {
				return h.Bounds[len(h.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(h.Bounds[i]-lo)
		}
		cum += c
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a registry's full frozen state, as serialized by the CLIs'
// -telemetry flag. It round-trips through JSON.
type Snapshot struct {
	// CapturedAt is the wall-clock capture time (RFC 3339).
	CapturedAt time.Time `json:"captured_at"`
	// UptimeS is seconds from registry creation to capture.
	UptimeS float64 `json:"uptime_s"`
	// Process identifies the emitting process so snapshots and trace files
	// from several processes merge unambiguously.
	Process    ProcessInfo                  `json:"process"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Spans      []SpanRecord                 `json:"spans"`
}

// Snapshot freezes the registry's current state. Metric updates racing the
// snapshot land in this snapshot or the next one; either way each snapshot
// is internally consistent per metric. Returns an empty snapshot on a nil
// registry.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		CapturedAt: time.Now(),
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	s.UptimeS = time.Since(r.start).Seconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Process = r.proc
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.count.Load(),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	s.Spans = append([]SpanRecord(nil), r.spans...)
	// spans are appended in completion order; sort by start so the exported
	// trace reads chronologically
	sort.SliceStable(s.Spans, func(i, j int) bool { return s.Spans[i].StartS < s.Spans[j].StartS })
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// flameNode aggregates the spans sharing one path.
type flameNode struct {
	path     string
	name     string
	depth    int
	count    int
	total    float64
	children []*flameNode
}

// Flame renders the trace as a flame-style text summary: spans aggregated
// by path, children indented under parents, each line showing call count,
// total wall-clock time, and the share of its parent's time.
func (s *Snapshot) Flame() string {
	byPath := map[string]*flameNode{}
	var roots []*flameNode
	node := func(path string) *flameNode {
		n, ok := byPath[path]
		if !ok {
			parts := strings.Split(path, "/")
			// a span name may itself contain no slash; depth = path segments
			// relative to its ancestor chain
			n = &flameNode{path: path, name: parts[len(parts)-1]}
			byPath[path] = n
		}
		return n
	}
	for _, sp := range s.Spans {
		n := node(sp.Path)
		n.name = sp.Name
		n.count++
		n.total += sp.DurS
	}
	// wire up the tree using the longest strictly-shorter registered prefix
	// as the parent (span names can contain '/' themselves)
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		n := byPath[p]
		parentPath := ""
		for _, q := range paths {
			if q != p && strings.HasPrefix(p, q+"/") && len(q) > len(parentPath) {
				parentPath = q
			}
		}
		if parentPath == "" {
			roots = append(roots, n)
			continue
		}
		parent := byPath[parentPath]
		n.depth = parent.depth + 1
		parent.children = append(parent.children, n)
	}
	// fix depths (children may have been wired before the parent's depth)
	var setDepth func(n *flameNode, d int)
	setDepth = func(n *flameNode, d int) {
		n.depth = d
		sort.Slice(n.children, func(i, j int) bool { return n.children[i].total > n.children[j].total })
		for _, c := range n.children {
			setDepth(c, d+1)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].total > roots[j].total })
	for _, r := range roots {
		setDepth(r, 0)
	}

	var b strings.Builder
	b.WriteString("trace summary (wall-clock, aggregated by span path)\n")
	if len(s.Spans) == 0 {
		b.WriteString("  (no spans recorded)\n")
		return b.String()
	}
	var render func(n *flameNode, parentTotal float64)
	render = func(n *flameNode, parentTotal float64) {
		share := ""
		if parentTotal > 0 {
			share = fmt.Sprintf("  %5.1f%%", 100*n.total/parentTotal)
		}
		fmt.Fprintf(&b, "  %s%-*s ×%-5d %8s%s\n",
			strings.Repeat("  ", n.depth), 36-2*n.depth, n.name, n.count, fmtSeconds(n.total), share)
		for _, c := range n.children {
			render(c, n.total)
		}
	}
	for _, r := range roots {
		render(r, 0)
	}
	return b.String()
}

// Summary renders a compact human-readable digest: top counters, histogram
// means, and the flame trace. Used for the stderr report on CLI exit.
func (s *Snapshot) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry: %d counters, %d gauges, %d histograms, %d spans over %s\n",
		len(s.Counters), len(s.Gauges), len(s.Histograms), len(s.Spans), fmtSeconds(s.UptimeS))
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %-36s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %-36s %g\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		// only time-valued histograms get duration formatting
		if strings.Contains(n, "second") {
			fmt.Fprintf(&b, "  %-36s n=%-7d mean=%s p50=%s p95=%s p99=%s total=%s\n",
				n, h.Count, fmtSeconds(h.Mean()),
				fmtSeconds(h.Quantile(0.50)), fmtSeconds(h.Quantile(0.95)), fmtSeconds(h.Quantile(0.99)),
				fmtSeconds(h.Sum))
		} else {
			fmt.Fprintf(&b, "  %-36s n=%-7d mean=%.4g p50=%.4g p95=%.4g p99=%.4g total=%.4g\n",
				n, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Sum)
		}
	}
	b.WriteString(s.Flame())
	return b.String()
}

// Flush snapshots the active registry and writes it as JSON to path,
// printing the human-readable summary to stderr. It is a no-op when
// telemetry is disabled or path is empty, so CLIs can call it
// unconditionally on every exit path (including after SIGINT
// cancellation).
func Flush(path string) error {
	r := Active()
	if r == nil || path == "" {
		return nil
	}
	snap := r.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	fmt.Fprint(os.Stderr, snap.Summary())
	fmt.Fprintf(os.Stderr, "telemetry snapshot written to %s\n", path)
	return nil
}

// ReadSnapshot loads a snapshot previously written by Flush/WriteJSON.
func ReadSnapshot(path string) (*Snapshot, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(blob, &s); err != nil {
		return nil, fmt.Errorf("telemetry: decode %s: %w", path, err)
	}
	return &s, nil
}
