// Package telemetry is the self-monitoring layer of the reproduction: a
// dependency-free metrics registry (counters, gauges, histograms with fixed
// bucket layouts) plus lightweight span tracing, threaded through every hot
// layer — the execution engine, the network simulator, the campaign driver,
// the dataset cache, and the ML stack.
//
// The paper's method is built on instrumentation of the system under study
// (Aries counters, 1 Hz LDMS sweeps, sacct logs); this package instruments
// the reproduction itself the same way, so a faulted 4-worker campaign is
// no longer a black box about its own execution.
//
// # Observation-only contract
//
// Telemetry NEVER feeds back into computation. Metric values are wall-clock
// times, cache statistics, and event counts — none of them are read by any
// simulation or analysis code path, so the engine's serial ≡ parallel
// byte-identical guarantee holds with telemetry enabled or disabled
// (enforced by the determinism tests in internal/cluster and the tests
// here). The snapshot itself is of course not deterministic: it records how
// this particular process executed.
//
// # Usage
//
// A process enables telemetry once, near main:
//
//	telemetry.Enable(telemetry.New())
//	defer telemetry.Flush("telemetry.json")
//
// Library code obtains nil-safe handles and updates them unconditionally:
//
//	hits := telemetry.C("netsim/path_cache_hits")
//	hits.Add(1) // no-op (nil handle) when telemetry is disabled
//
// Spans nest through a context:
//
//	ctx, sp := telemetry.Start(ctx, "campaign")
//	defer sp.End()
//
// Every metric and span name emitted by the repository is documented in
// docs/OBSERVABILITY.md; keep the two in sync when instrumenting new code.
package telemetry

import (
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; a nil *Counter is a valid no-op handle.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil handle.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil handle.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down (queue depths, cache
// sizes, configuration values). A nil *Gauge is a valid no-op handle.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil handle.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge. No-op on a nil handle.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into a fixed bucket layout. The
// layout is immutable after creation, so snapshots taken on different
// hosts or at different times aggregate bucket-by-bucket — the same
// reason LDMS fixes its sampling schema up front. A nil *Histogram is a
// valid no-op handle.
type Histogram struct {
	bounds []float64      // ascending upper bounds; immutable
	counts []atomic.Int64 // len(bounds)+1; last bucket is the +Inf overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// newHistogram builds a histogram over the given ascending bounds.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. Bucket i holds observations v ≤ bounds[i]
// (and > bounds[i-1]); values above every bound land in the overflow
// bucket. No-op on a nil handle.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// binary search for the first bound ≥ v
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the wall-clock seconds elapsed since t0. No-op on a
// nil handle (time.Since is still evaluated; guard with Enabled for
// ultra-hot paths).
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Standard bucket layouts. Fixed layouts keep aggregation well-defined:
// two snapshots with the same metric name always share bucket edges.
var (
	// SecondsBuckets spans 100 µs … ~1000 s exponentially (factor ~3.16),
	// fitting everything from a shard dispatch to a full campaign.
	SecondsBuckets = []float64{1e-4, 3.16e-4, 1e-3, 3.16e-3, 1e-2, 3.16e-2, 0.1, 0.316, 1, 3.16, 10, 31.6, 100, 316, 1000}
	// BytesBuckets spans 1 KiB … 4 GiB in powers of 4.
	BytesBuckets = []float64{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24, 1 << 26, 1 << 28, 1 << 30, 1 << 32}
	// CountBuckets spans 1 … 1e6 in powers of 10 with midpoints.
	CountBuckets = []float64{1, 3, 10, 30, 100, 300, 1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6}
)

// ProcessInfo identifies the process a snapshot or trace file came from,
// so files from several processes merge unambiguously in `dfvar trace`.
type ProcessInfo struct {
	PID      int    `json:"pid"`
	Hostname string `json:"hostname"`
	// Role names what the process was doing: "coordinator", "worker",
	// "dfserved", or the tool name. Set via SetRole.
	Role string `json:"role,omitempty"`
	// StartedAt is the registry's wall-clock creation time; span offsets
	// are relative to it.
	StartedAt time.Time `json:"started_at"`
}

// Registry holds a process's metrics and completed spans. All methods are
// safe for concurrent use; metric updates after registration are lock-free.
// A nil *Registry hands out nil (no-op) handles, so callers never branch.
type Registry struct {
	start time.Time

	mu       sync.Mutex
	proc     ProcessInfo
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    []SpanRecord
	spanSeq  int64
}

// New creates an empty registry stamped with the process's identity.
func New() *Registry {
	start := time.Now()
	host, _ := os.Hostname()
	return &Registry{
		start:    start,
		proc:     ProcessInfo{PID: os.Getpid(), Hostname: host, StartedAt: start},
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// SetRole records the process role ("coordinator", "worker", …) on the
// registry's process identity. No-op on a nil registry.
func (r *Registry) SetRole(role string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.proc.Role = role
	r.mu.Unlock()
}

// Process returns the registry's process identity (zero value on nil).
func (r *Registry) Process() ProcessInfo {
	if r == nil {
		return ProcessInfo{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.proc
}

// SetRole records the process role on the active registry (no-op when
// telemetry is disabled). Call it right after Enable.
func SetRole(role string) { Active().SetRole(role) }

// Counter returns the named counter, creating it on first use. Returns a
// nil (no-op) handle on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns a nil
// (no-op) handle on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use. Later calls reuse the existing layout (the bounds
// argument is ignored then) so a metric name always has one fixed layout.
// Returns a nil (no-op) handle on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// active is the process-wide registry consulted by the package-level
// helpers; nil means telemetry is disabled (the default).
var active atomic.Pointer[Registry]

// Enable installs r as the process-wide registry. Call once near main,
// before constructing the objects to instrument (handles are captured at
// construction time). Enable(nil) is equivalent to Disable.
func Enable(r *Registry) { active.Store(r) }

// Disable removes the process-wide registry; subsequently created handles
// are no-ops. Metrics already handed out keep updating their (now
// unreachable) registry, which is harmless.
func Disable() { active.Store(nil) }

// Active returns the process-wide registry, or nil when disabled.
func Active() *Registry { return active.Load() }

// Enabled reports whether a process-wide registry is installed. Use it to
// skip expensive instrumentation work (time.Now calls in tight loops); the
// handles themselves are always safe to call.
func Enabled() bool { return active.Load() != nil }

// C returns the named counter from the active registry (a no-op handle
// when telemetry is disabled).
func C(name string) *Counter { return Active().Counter(name) }

// G returns the named gauge from the active registry (a no-op handle when
// telemetry is disabled).
func G(name string) *Gauge { return Active().Gauge(name) }

// H returns the named histogram from the active registry (a no-op handle
// when telemetry is disabled).
func H(name string, bounds []float64) *Histogram { return Active().Histogram(name, bounds) }

// fmtSeconds renders a duration in seconds compactly for the text summary.
func fmtSeconds(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0fs", s)
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.0fµs", s*1e6)
	}
}
