package telemetry

import (
	"context"
	"time"
)

// SpanRecord is one completed span as stored in the registry and exported
// in snapshots. Offsets are relative to the registry's start time so a
// trace is self-contained.
type SpanRecord struct {
	ID     int64  `json:"id"`
	Parent int64  `json:"parent"` // 0 for root spans
	Name   string `json:"name"`
	// Path is the "/"-joined chain of ancestor names ending in Name; flame
	// aggregation groups by it.
	Path    string  `json:"path"`
	StartS  float64 `json:"start_s"` // offset from registry start, seconds
	DurS    float64 `json:"dur_s"`   // wall-clock duration, seconds
	Workers int     `json:"-"`       // reserved; not exported yet
}

// Span is an in-flight traced operation. A nil *Span is a valid no-op
// handle (telemetry disabled), so callers never branch around tracing.
type Span struct {
	r      *Registry
	id     int64
	parent int64
	name   string
	path   string
	start  time.Time
}

type spanCtxKey struct{}

// Start begins a span named name as a child of the span carried by ctx (a
// root span when ctx carries none) and returns a derived context carrying
// the new span. When telemetry is disabled it returns (ctx, nil) — the nil
// span's End is a no-op — so tracing costs one pointer load when off.
//
// Spans record wall-clock durations for the process's own execution; they
// are observation-only and never influence simulation results.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	r := Active()
	if r == nil {
		return ctx, nil
	}
	return StartIn(r, ctx, name)
}

// StartIn is Start against an explicit registry, for tests and for callers
// that manage registry lifetime themselves.
func StartIn(r *Registry, ctx context.Context, name string) (context.Context, *Span) {
	if r == nil {
		return ctx, nil
	}
	var parentID int64
	path := name
	if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok && parent != nil && parent.r == r {
		parentID = parent.id
		path = parent.path + "/" + name
	}
	r.mu.Lock()
	r.spanSeq++
	id := r.spanSeq
	r.mu.Unlock()
	sp := &Span{r: r, id: id, parent: parentID, name: name, path: path, start: time.Now()}
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// End completes the span and records it in its registry. No-op on a nil
// handle; safe to call at most once (a second call records a duplicate).
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Path:   s.path,
		StartS: s.start.Sub(s.r.start).Seconds(),
		DurS:   now.Sub(s.start).Seconds(),
	}
	s.r.mu.Lock()
	s.r.spans = append(s.r.spans, rec)
	s.r.mu.Unlock()
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}
