package telemetry

import (
	"context"
	"sync"
	"time"
)

// SpanRecord is one completed span as stored in the registry and exported
// in snapshots. Offsets are relative to the registry's start time so a
// trace is self-contained; combined with the snapshot's process identity
// the offsets convert to absolute times for cross-process stitching.
type SpanRecord struct {
	ID     int64  `json:"id"`
	Parent int64  `json:"parent"` // 0 for root spans
	Name   string `json:"name"`
	// Path is the "/"-joined chain of ancestor names ending in Name; flame
	// aggregation groups by it.
	Path    string  `json:"path"`
	StartS  float64 `json:"start_s"` // offset from registry start, seconds
	DurS    float64 `json:"dur_s"`   // wall-clock duration, seconds
	Workers int     `json:"-"`       // reserved; not exported yet

	// Distributed-tracing identity. TraceID is shared by every span of one
	// logical operation across processes; ParentSpanID links to the parent
	// span, which may live in another process (then Parent is 0: the span
	// is a local root with a remote parent).
	TraceID      string `json:"trace_id,omitempty"`
	SpanID       string `json:"span_id,omitempty"`
	ParentSpanID string `json:"parent_span_id,omitempty"`
	// Attrs are small key=value annotations (worker ID, attempt number,
	// request endpoint, outcome) attached via SetAttr.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Span is an in-flight traced operation. A nil *Span is a valid no-op
// handle (telemetry disabled), so callers never branch around tracing.
type Span struct {
	r         *Registry
	id        int64
	parent    int64
	name      string
	path      string
	start     time.Time
	sc        SpanContext
	parentSID SpanID

	mu    sync.Mutex // guards attrs and done
	attrs map[string]string
	done  bool
}

type spanCtxKey struct{}

// Start begins a span named name as a child of the span carried by ctx (a
// root span when ctx carries none) and returns a derived context carrying
// the new span. A remote parent installed by ContextWithRemote (an inbound
// traceparent header) makes the span a local root that joins the remote
// trace. When telemetry is disabled it returns (ctx, nil) — the nil span's
// End is a no-op — so tracing costs one pointer load when off.
//
// Spans record wall-clock durations for the process's own execution; they
// are observation-only and never influence simulation results. Trace and
// span IDs come from a dedicated process-local generator, never from a
// seeded simulation RNG stream.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	r := Active()
	if r == nil {
		return ctx, nil
	}
	return StartIn(r, ctx, name)
}

// StartIn is Start against an explicit registry, for tests and for callers
// that manage registry lifetime themselves.
func StartIn(r *Registry, ctx context.Context, name string) (context.Context, *Span) {
	if r == nil {
		return ctx, nil
	}
	var parentID int64
	path := name
	sc := SpanContext{Span: NewSpanID()}
	var parentSID SpanID
	if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok && parent != nil && parent.r == r {
		parentID = parent.id
		path = parent.path + "/" + name
		sc.Trace = parent.sc.Trace
		parentSID = parent.sc.Span
	} else if remote, ok := ctx.Value(remoteCtxKey{}).(SpanContext); ok && remote.Valid() {
		sc.Trace = remote.Trace
		parentSID = remote.Span
	}
	if sc.Trace.IsZero() {
		sc.Trace = NewTraceID()
	}
	r.mu.Lock()
	r.spanSeq++
	id := r.spanSeq
	r.mu.Unlock()
	sp := &Span{r: r, id: id, parent: parentID, name: name, path: path, start: time.Now(),
		sc: sc, parentSID: parentSID}
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// SetAttr attaches a key=value annotation to the span, visible on its
// record after End. No-op on a nil handle or after End. Safe for concurrent
// use, though attrs are normally set by the goroutine owning the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		if s.attrs == nil {
			s.attrs = map[string]string{}
		}
		s.attrs[key] = value
	}
	s.mu.Unlock()
}

// SpanContext returns the span's cross-process identity for propagation
// (e.g. as a traceparent header). ok is false on a nil handle.
func (s *Span) SpanContext() (SpanContext, bool) {
	if s == nil {
		return SpanContext{}, false
	}
	return s.sc, true
}

// ParentSpanContext returns the identity of the span's parent, local or
// remote. ok is false on a nil handle or a root span.
func (s *Span) ParentSpanContext() (SpanContext, bool) {
	if s == nil || s.parentSID.IsZero() {
		return SpanContext{}, false
	}
	return SpanContext{Trace: s.sc.Trace, Span: s.parentSID}, true
}

// End completes the span and records it in its registry. No-op on a nil
// handle; extra calls after the first are ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	attrs := s.attrs
	s.mu.Unlock()
	rec := SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		Path:    s.path,
		StartS:  s.start.Sub(s.r.start).Seconds(),
		DurS:    now.Sub(s.start).Seconds(),
		TraceID: s.sc.Trace.String(),
		SpanID:  s.sc.Span.String(),
		Attrs:   attrs,
	}
	if !s.parentSID.IsZero() {
		rec.ParentSpanID = s.parentSID.String()
	}
	s.r.mu.Lock()
	s.r.spans = append(s.r.spans, rec)
	s.r.mu.Unlock()
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}
