package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Trace export. The -trace FILE flag on every CLI writes two artifacts from
// one snapshot: FILE, a JSONL span stream (one process line followed by one
// line per completed span, timestamps as absolute unix nanoseconds so files
// from different processes on one host align on a shared clock), and
// FILE.chrome.json, the same spans in Chrome trace-event format, loadable
// directly in chrome://tracing or Perfetto. The JSONL stream is what `dfvar
// trace` stitches; the Chrome file is for eyeballs.

// TraceEventsSuffix is appended to the -trace path for the Chrome
// trace-event rendering of the same spans.
const TraceEventsSuffix = ".chrome.json"

// traceLine is one line of the JSONL span stream. Type is "process" for
// the header line and "span" for every following line.
type traceLine struct {
	Type string `json:"type"`

	// process line
	PID         int    `json:"pid,omitempty"`
	Hostname    string `json:"hostname,omitempty"`
	Role        string `json:"role,omitempty"`
	StartedAt   string `json:"started_at,omitempty"`
	StartUnixNs int64  `json:"start_unix_ns,omitempty"`

	// span lines
	TraceID      string            `json:"trace_id,omitempty"`
	SpanID       string            `json:"span_id,omitempty"`
	ParentSpanID string            `json:"parent_span_id,omitempty"`
	Name         string            `json:"name,omitempty"`
	Path         string            `json:"path,omitempty"`
	DurNs        int64             `json:"dur_ns,omitempty"`
	Attrs        map[string]string `json:"attrs,omitempty"`
}

// WriteSpanJSONL writes the snapshot's spans as a JSONL stream: first a
// process-identity line, then one line per span in start order.
func (s *Snapshot) WriteSpanJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	base := s.Process.StartedAt.UnixNano()
	head := traceLine{
		Type:        "process",
		PID:         s.Process.PID,
		Hostname:    s.Process.Hostname,
		Role:        s.Process.Role,
		StartedAt:   s.Process.StartedAt.Format(time.RFC3339Nano),
		StartUnixNs: base,
	}
	if err := enc.Encode(head); err != nil {
		return err
	}
	for _, sp := range s.Spans {
		line := traceLine{
			Type:         "span",
			TraceID:      sp.TraceID,
			SpanID:       sp.SpanID,
			ParentSpanID: sp.ParentSpanID,
			Name:         sp.Name,
			Path:         sp.Path,
			StartUnixNs:  base + int64(sp.StartS*1e9),
			DurNs:        int64(sp.DurS * 1e9),
			Attrs:        sp.Attrs,
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}

// traceEvent is one Chrome trace-event. Complete ("X") events carry ts+dur
// in microseconds; metadata ("M") events name the process.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceEventFile is the Chrome trace-event JSON object format.
type traceEventFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// chromeEvents renders the snapshot's spans as trace events. Timestamps are
// absolute unix microseconds, so events from several processes land on one
// shared timeline when merged. Each local root span gets its own lane
// (tid), and descendants share their root's lane, which keeps concurrent
// units visually separate.
func (s *Snapshot) chromeEvents() []traceEvent {
	procName := s.Process.Role
	if procName == "" {
		procName = "process"
	}
	events := []traceEvent{{
		Name: "process_name", Ph: "M", PID: s.Process.PID,
		Args: map[string]any{"name": fmt.Sprintf("%s (%s, pid %d)", procName, s.Process.Hostname, s.Process.PID)},
	}}
	// resolve each span's lane: the local ID of its root ancestor
	parentOf := make(map[int64]int64, len(s.Spans))
	for _, sp := range s.Spans {
		parentOf[sp.ID] = sp.Parent
	}
	lane := func(id int64) int64 {
		for {
			p := parentOf[id]
			if p == 0 {
				return id
			}
			id = p
		}
	}
	base := float64(s.Process.StartedAt.UnixNano()) / 1e3
	for _, sp := range s.Spans {
		args := map[string]any{
			"trace_id": sp.TraceID,
			"span_id":  sp.SpanID,
		}
		if sp.ParentSpanID != "" {
			args["parent_span_id"] = sp.ParentSpanID
		}
		for k, v := range sp.Attrs {
			args[k] = v
		}
		events = append(events, traceEvent{
			Name: sp.Name, Ph: "X", Cat: "span",
			PID: s.Process.PID, TID: lane(sp.ID),
			Ts: base + sp.StartS*1e6, Dur: sp.DurS * 1e6,
			Args: args,
		})
	}
	return events
}

// WriteTraceEvents writes the snapshot's spans as a Chrome trace-event JSON
// object ({"traceEvents": […]}), loadable in chrome://tracing or Perfetto.
func (s *Snapshot) WriteTraceEvents(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(traceEventFile{TraceEvents: s.chromeEvents(), DisplayTimeUnit: "ms"})
}

// writeFileWith creates path and runs fn over it, closing carefully.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := fn(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	return nil
}

// FlushTrace snapshots the active registry and writes its span stream to
// path (JSONL) and path+TraceEventsSuffix (Chrome trace events). Like
// Flush it is a no-op when telemetry is disabled or path is empty, so CLIs
// call it unconditionally on exit.
func FlushTrace(path string) error {
	r := Active()
	if r == nil || path == "" {
		return nil
	}
	snap := r.Snapshot()
	if err := writeFileWith(path, snap.WriteSpanJSONL); err != nil {
		return err
	}
	if err := writeFileWith(path+TraceEventsSuffix, snap.WriteTraceEvents); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trace: %d spans written to %s (+%s)\n",
		len(snap.Spans), path, TraceEventsSuffix)
	return nil
}
