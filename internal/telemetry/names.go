package telemetry

// Canonical metric and span names emitted across the repository. Every
// instrumented package refers to these constants instead of string
// literals, and the doc-lint test (lint_docs_test.go at the repo root)
// checks that each name is documented in docs/OBSERVABILITY.md — so the
// registry below is the single source of truth for what the system emits.
const (
	// internal/engine — the shared execution engine.
	MEngineMaps       = "engine/maps_total"         // counter: Map/MapOrdered invocations
	MEngineShards     = "engine/shards_total"       // counter: shards dispatched
	MEngineShardWait  = "engine/shard_wait_seconds" // histogram: Map entry → shard pickup
	MEngineShardRun   = "engine/shard_run_seconds"  // histogram: per-shard fn wall time
	MEngineMapSeconds = "engine/map_seconds"        // histogram: whole Map invocation
	GEngineWorkers    = "engine/workers"            // gauge: last resolved worker count

	// internal/netsim — the flow-level congestion simulator.
	MNetsimCacheHits   = "netsim/path_cache_hits"          // counter: candidate-path cache hits (local, per-network)
	MNetsimCacheMisses = "netsim/path_cache_misses"        // counter: candidate-path recomputations
	MNetsimCacheShared = "netsim/path_cache_shared_hits"   // counter: misses satisfied by the shared cross-worker cache
	MNetsimCacheInval  = "netsim/path_cache_invalidations" // counter: cache-epoch switches (dead-set changes, ResetCache)
	MNetsimRounds      = "netsim/rounds_total"             // counter: simulation rounds run
	MNetsimRoundFlits  = "netsim/round_flits"              // histogram: offered flits per round
	MNetsimRoundSecs   = "netsim/round_seconds"            // histogram: wall time per round
	GNetsimMaxUtil     = "netsim/max_link_utilization"     // gauge: max link utilization of the last routed round

	// internal/routing — pluggable routing-policy decisions.
	MRoutingCandidateSets = "routing/candidate_sets_total"        // counter: candidate sets built (one per path-cache miss)
	MRoutingMinimal       = "routing/minimal_candidates_total"    // counter: minimal candidates returned across all sets
	MRoutingNonMinimal    = "routing/nonminimal_candidates_total" // counter: non-minimal (Valiant/BFS) candidates returned
	MRoutingBFSFallback   = "routing/bfs_fallbacks_total"         // counter: faults blocked every structured candidate; healthy-BFS route used

	// internal/slurm + internal/cluster — pluggable placement-policy decisions.
	MSlurmPlacements      = "slurm/placements_total"         // counter: successful policy placements
	MSlurmPlacementNodes  = "slurm/placement_nodes"          // histogram: nodes handed out per placement
	MSlurmPlacementGroups = "slurm/placement_groups"         // histogram: groups spanned per placement
	MSlurmHotGroupAvoided = "slurm/hot_groups_avoided_total" // counter: hot groups excluded by interference-aware placement
	MSlurmAdviceFallback  = "slurm/advice_fallbacks_total"   // counter: interference-aware placements that had to ignore the advice to fit

	// internal/monitor — the streaming network-weather monitor.
	MMonitorSamples   = "monitor/samples_total"         // counter: healthy observations consumed
	MMonitorEvents    = "monitor/events_total"          // counter: anomaly events emitted
	GMonitorHot       = "monitor/hot_routers"           // gauge: routers currently flagged hot
	GMonitorCongested = "monitor/congested_groups"      // gauge: groups currently over the stall threshold
	GMonitorMaxStall  = "monitor/max_group_stall_ratio" // gauge: max smoothed per-group stall ratio
	GMonitorGapFrac   = "monitor/gap_fraction"          // gauge: missing / (missing+healthy) observations
	GMonitorLastT     = "monitor/last_sample_t"         // gauge: simulated time of the last healthy observation

	// internal/cluster — the campaign driver.
	MClusterRuns      = "cluster/runs_total"               // counter: controlled runs completed
	MClusterDrained   = "cluster/runs_drained_total"       // counter: runs killed by a fault mid-flight
	MClusterRequeues  = "cluster/requeues_total"           // counter: fault requeues issued
	MClusterAbandoned = "cluster/requeues_abandoned_total" // counter: submissions given up after requeueLimit
	MClusterRounds    = "cluster/rounds_total"             // counter: campaign simulation rounds
	MClusterRunSecs   = "cluster/run_seconds"              // histogram: per-run simulation wall time
	MClusterMergeSecs = "cluster/merge_seconds"            // histogram: serial merge+requeue phase per round
	MLDMSSamples      = "ldms/samples_total"               // counter: LDMS samples recorded

	// internal/dataset + internal/core — the campaign gob cache.
	MCacheHits       = "dataset/cache_hits"         // counter: cache satisfied a campaign request
	MCacheMisses     = "dataset/cache_misses"       // counter: cache absent/stale → regeneration
	MCacheReadBytes  = "dataset/cache_read_bytes"   // counter: gob bytes read
	MCacheWriteBytes = "dataset/cache_write_bytes"  // counter: gob bytes written
	MCacheLoadSecs   = "dataset/cache_load_seconds" // histogram: Load wall time
	MCacheSaveSecs   = "dataset/cache_save_seconds" // histogram: Save wall time

	// internal/dataset — the streaming ingest path (daemon mode).
	MSegmentsSealed    = "dataset/segments_sealed_total" // counter: ingest windows sealed into segment files
	MSegmentWriteBytes = "dataset/segment_write_bytes"   // counter: segment bytes written (CRC-framed gob)

	// the ML stack (internal/gbr, internal/nn, internal/rfe).
	MGBRFits    = "ml/gbr_fits_total"   // counter: boosted models fitted
	MGBRFitSecs = "ml/gbr_fit_seconds"  // histogram: per-fit wall time
	MNNFits     = "ml/nn_fits_total"    // counter: forecaster trainings
	MNNFitSecs  = "ml/nn_fit_seconds"   // histogram: per-training wall time
	MRFEFolds   = "ml/rfe_folds_total"  // counter: RFE cross-validation folds run
	MRFERounds  = "ml/rfe_rounds_total" // counter: RFE elimination iterations across folds

	// internal/serve — the forecast-serving daemon (cmd/dfserved).
	MServeRequests      = "serve/requests_total"           // counter: API requests admitted past the limiter
	MServeErrors        = "serve/errors_total"             // counter: 4xx/5xx API responses (bad payloads, internal errors)
	MServeShed          = "serve/shed_total"               // counter: requests shed with 429 (queue full) or 503 (draining)
	MServeForecastReqs  = "serve/forecast_requests_total"  // counter: /v1/forecast requests admitted
	MServeDeviationReqs = "serve/deviation_requests_total" // counter: /v1/deviation requests admitted
	MServeBlameReqs     = "serve/blame_requests_total"     // counter: /v1/advisor/blame requests admitted
	MServeSpecReqs      = "serve/spec_requests_total"      // counter: /v1/spec requests served
	MServeForecastSecs  = "serve/forecast_seconds"         // histogram: /v1/forecast end-to-end latency
	MServeDeviationSecs = "serve/deviation_seconds"        // histogram: /v1/deviation end-to-end latency
	MServeBlameSecs     = "serve/blame_seconds"            // histogram: /v1/advisor/blame end-to-end latency
	MServeSpecSecs      = "serve/spec_seconds"             // histogram: /v1/spec end-to-end latency
	MServeQueueDepth    = "serve/queue_depth"              // histogram: waiting requests sampled at each admission
	GServeInflight      = "serve/inflight"                 // gauge: requests currently holding an execution slot
	GServeDraining      = "serve/draining"                 // gauge: 1 while graceful drain is in progress
	MServeCacheHits     = "serve/cache_hits"               // counter: forecast LRU prediction-cache hits
	MServeCacheMisses   = "serve/cache_misses"             // counter: forecast LRU prediction-cache misses
	MServeBatches       = "serve/batches_total"            // counter: coalesced model batch calls
	MServeBatchSize     = "serve/batch_size"               // histogram: forecast requests coalesced per batch call
	MServeModelReloads  = "serve/model_reloads_total"      // counter: hot model swaps (ref advance or SIGHUP)

	// internal/dist — the distributed campaign layer (coordinator unless
	// noted; the client-retry counter is recorded by worker processes).
	MDistLeasesGranted    = "dist/leases_granted_total"     // counter: work-unit leases handed to workers
	MDistLeaseExpired     = "dist/lease_expired_total"      // counter: leases that hit their deadline unanswered
	MDistLeaseRedispatch  = "dist/lease_redispatched_total" // counter: units re-queued after expiry, worker death, or a malformed result
	MDistResults          = "dist/results_total"            // counter: unit results accepted
	MDistResultsMalformed = "dist/results_malformed_total"  // counter: results rejected as undecodable or inconsistent
	MDistResultsStale     = "dist/results_stale_total"      // counter: results for already-completed or out-of-round units
	MDistWorkerDeaths     = "dist/worker_deaths_total"      // counter: workers declared dead after missed heartbeats
	MDistCheckpointRecs   = "dist/checkpoint_records_total" // counter: outcome records appended to the spill file
	MDistResumedUnits     = "dist/resumed_units_total"      // counter: units satisfied from the checkpoint on resume
	MDistClientRetries    = "dist/client_retries_total"     // counter: worker-side RPC retries (transient coordinator errors)
	MDistHeartbeatGap     = "dist/heartbeat_gap_seconds"    // histogram: gap between consecutive signs of life per worker
	MDistWorkerUnits      = "dist/worker_units"             // histogram: units completed per worker, observed at campaign end
	GDistWorkers          = "dist/workers"                  // gauge: workers currently considered alive
	GDistPendingUnits     = "dist/pending_units"            // gauge: units of the current round not yet completed
	GDistLeasedUnits      = "dist/leased_units"             // gauge: units currently out on a lease

	// internal/monitor — event-stream rotation (daemon mode).
	MMonitorRotations = "monitor/rotations_total" // counter: JSONL event files rotated out

	// internal/daemon — the continuous-operation daemon (cmd/dfvard).
	MDaemonEpochs        = "daemon/epochs_total"         // counter: campaign epochs completed
	MDaemonRunsIngested  = "daemon/runs_ingested_total"  // counter: runs streamed into the windowed dataset
	MDaemonResumedRuns   = "daemon/resumed_runs_total"   // counter: runs skipped on resume (already ingested pre-kill)
	MDaemonRetrains      = "daemon/retrains_total"       // counter: retraining passes (scheduled + drift)
	MDaemonDriftRetrains = "daemon/drift_retrains_total" // counter: retrains triggered by drift breaches
	MDaemonPublishes     = "daemon/publishes_total"      // counter: model refs advanced in the modelstore
	MDaemonEpochSecs     = "daemon/epoch_seconds"        // histogram: wall time per campaign epoch
	MDaemonRetrainSecs   = "daemon/retrain_seconds"      // histogram: wall time per retraining pass
	GDaemonLiveMAPE      = "daemon/live_mape"            // gauge: rolling forecast MAPE over recent sealed windows
	GDaemonTrainMAPE     = "daemon/train_mape"           // gauge: training-time MAPE of the serving forecaster
)

// Serving bucket layouts. Like the layouts in telemetry.go these are fixed
// so snapshots from different daemons aggregate bucket-by-bucket.
var (
	// LatencyBuckets spans 50 µs … 10 s with ~2.5× steps — tight enough to
	// read p99 on a sub-millisecond cache hit and wide enough for a cold
	// batched model call under queueing.
	LatencyBuckets = []float64{5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
		2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	// QueueDepthBuckets spans 0 … 4096 in powers of two (0 gets its own
	// bucket: an empty queue is the common, healthy case).
	QueueDepthBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
)

// Span names. Dynamic suffixes are limited to the documented artifact
// names ("report/fig9", …); everything else is a fixed string.
const (
	SpanCampaign         = "campaign"            // one controlled-experiment campaign
	SpanCampaignSchedule = "campaign/schedule"   // child: placement of all submissions
	SpanCampaignRound    = "campaign/round"      // child: one parallel simulation round
	SpanMLForecast       = "ml/forecast"         // cross-validated forecaster training+eval
	SpanMLDeviation      = "ml/deviation"        // GBR+RFE deviation analysis
	SpanMLImportances    = "ml/importances"      // permutation-importance pass
	SpanMLForecastLong   = "ml/forecast_longrun" // long-run segment forecasting
	SpanLDMSRecord       = "ldms/record"         // system-wide counter recording
	SpanReportPrefix     = "report/"             // + artifact name (report/fig9, report/table1, …)

	// internal/dist — cross-process campaign spans. The coordinator opens
	// one dist/unit span per lease (attrs: unit, round, worker, attempt;
	// outcome on close); the worker roots its session span under the
	// campaign trace and parents each unit execution to the coordinator's
	// lease span via the traceparent handed back in the lease response.
	SpanDistUnit      = "dist/unit"      // coordinator: one lease lifetime (grant → result/requeue)
	SpanDistWorker    = "dist/worker"    // worker: one join→drain session, child of the campaign span
	SpanDistUnitExec  = "dist/unit_exec" // worker: one leased unit execution, child of dist/unit
	SpanDistSimulate  = "dist/simulate"  // worker: the simulation itself (compute)
	SpanDistDeliver   = "dist/deliver"   // worker: result delivery RPC including retries (network)
	SpanDistRPCPrefix = "dist/rpc/"      // coordinator: + endpoint (dist/rpc/lease, dist/rpc/result); only for requests carrying a traceparent

	// internal/serve — per-request spans in the forecast daemon. Each
	// request gets a root span (or joins the client's trace when the
	// request carries a traceparent header); the span context is returned
	// in the response's traceparent header for client correlation.
	SpanServeRequest = "serve/request" // one API request, admission → response (attrs: endpoint, outcome)
	SpanServeAdmit   = "serve/admit"   // child: admission queue wait
	SpanServePredict = "serve/predict" // child: batched model call on a forecast cache miss

	// internal/daemon — the continuous-operation loop in cmd/dfvard.
	SpanDaemonEpoch   = "daemon/epoch"   // one campaign epoch: simulate + ingest
	SpanDaemonRetrain = "daemon/retrain" // one retraining pass (attrs: reason, retrain index)
	SpanDaemonPublish = "daemon/publish" // one modelstore publish of a retrained model set
)

// AllMetricNames lists every metric name the repository emits; the doc-lint
// test requires each to appear in docs/OBSERVABILITY.md.
var AllMetricNames = []string{
	MEngineMaps, MEngineShards, MEngineShardWait, MEngineShardRun, MEngineMapSeconds, GEngineWorkers,
	MNetsimCacheHits, MNetsimCacheMisses, MNetsimCacheShared, MNetsimCacheInval, MNetsimRounds, MNetsimRoundFlits, MNetsimRoundSecs, GNetsimMaxUtil,
	MRoutingCandidateSets, MRoutingMinimal, MRoutingNonMinimal, MRoutingBFSFallback,
	MSlurmPlacements, MSlurmPlacementNodes, MSlurmPlacementGroups, MSlurmHotGroupAvoided, MSlurmAdviceFallback,
	MMonitorSamples, MMonitorEvents, GMonitorHot, GMonitorCongested, GMonitorMaxStall, GMonitorGapFrac, GMonitorLastT,
	MClusterRuns, MClusterDrained, MClusterRequeues, MClusterAbandoned, MClusterRounds, MClusterRunSecs, MClusterMergeSecs,
	MLDMSSamples,
	MCacheHits, MCacheMisses, MCacheReadBytes, MCacheWriteBytes, MCacheLoadSecs, MCacheSaveSecs,
	MSegmentsSealed, MSegmentWriteBytes,
	MGBRFits, MGBRFitSecs, MNNFits, MNNFitSecs, MRFEFolds, MRFERounds,
	MServeRequests, MServeErrors, MServeShed,
	MServeForecastReqs, MServeDeviationReqs, MServeBlameReqs, MServeSpecReqs,
	MServeForecastSecs, MServeDeviationSecs, MServeBlameSecs, MServeSpecSecs, MServeQueueDepth,
	GServeInflight, GServeDraining,
	MServeCacheHits, MServeCacheMisses, MServeBatches, MServeBatchSize, MServeModelReloads,
	MDistLeasesGranted, MDistLeaseExpired, MDistLeaseRedispatch,
	MDistResults, MDistResultsMalformed, MDistResultsStale,
	MDistWorkerDeaths, MDistCheckpointRecs, MDistResumedUnits, MDistClientRetries,
	MDistHeartbeatGap, MDistWorkerUnits,
	GDistWorkers, GDistPendingUnits, GDistLeasedUnits,
	MMonitorRotations,
	MDaemonEpochs, MDaemonRunsIngested, MDaemonResumedRuns,
	MDaemonRetrains, MDaemonDriftRetrains, MDaemonPublishes,
	MDaemonEpochSecs, MDaemonRetrainSecs, GDaemonLiveMAPE, GDaemonTrainMAPE,
}

// AllSpanNames lists every fixed span name plus the report prefix.
var AllSpanNames = []string{
	SpanCampaign, SpanCampaignSchedule, SpanCampaignRound,
	SpanMLForecast, SpanMLDeviation, SpanMLImportances, SpanMLForecastLong,
	SpanLDMSRecord, SpanReportPrefix,
	SpanDistUnit, SpanDistWorker, SpanDistUnitExec, SpanDistSimulate, SpanDistDeliver, SpanDistRPCPrefix,
	SpanServeRequest, SpanServeAdmit, SpanServePredict,
	SpanDaemonEpoch, SpanDaemonRetrain, SpanDaemonPublish,
}
