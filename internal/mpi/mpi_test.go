package mpi

import (
	"math"
	"testing"

	"dragonvar/internal/topology"
)

func testMapper(t *testing.T, numNodes, ranksPerNode int) *RankMapper {
	t.Helper()
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	knl := d.ComputeNodes(topology.KNL)
	if len(knl) < numNodes {
		t.Fatalf("test machine too small: %d KNL nodes, need %d", len(knl), numNodes)
	}
	return &RankMapper{Topo: d, Nodes: knl[:numNodes], RanksPerNode: ranksPerNode}
}

func TestRoutineString(t *testing.T) {
	if Waitall.String() != "Waitall" || Allreduce.String() != "Allreduce" {
		t.Fatal("routine names wrong")
	}
	if Routine(99).String() != "Routine(99)" {
		t.Fatal("out-of-range routine name should be diagnostic")
	}
	if NumRoutines != 10 {
		t.Fatalf("NumRoutines = %d", NumRoutines)
	}
}

func TestProfileTotalAddScaled(t *testing.T) {
	var p Profile
	p[Waitall] = 3
	p[Allreduce] = 2
	if p.Total() != 5 {
		t.Fatalf("Total = %v", p.Total())
	}
	q := p.Scaled(2)
	if q[Waitall] != 6 || q.Total() != 10 {
		t.Fatal("Scaled wrong")
	}
	p.Add(&q)
	if p[Allreduce] != 6 {
		t.Fatal("Add wrong")
	}
}

func TestProfileDominant(t *testing.T) {
	var p Profile
	p[Waitall] = 6
	p[Iprobe] = 3
	p[Test] = 1
	dom := p.Dominant()
	if len(dom) != 3 {
		t.Fatalf("Dominant len = %d", len(dom))
	}
	if dom[0].Routine != Waitall || math.Abs(dom[0].Share-0.6) > 1e-12 {
		t.Fatalf("top routine = %+v", dom[0])
	}
	if dom[1].Routine != Iprobe || dom[2].Routine != Test {
		t.Fatal("Dominant not sorted")
	}
}

func TestFlitsFor(t *testing.T) {
	if FlitsFor(0) != 0 || FlitsFor(-5) != 0 {
		t.Fatal("non-positive bytes should need 0 flits")
	}
	if FlitsFor(16) != 1 || FlitsFor(17) != 2 {
		t.Fatalf("FlitsFor(16)=%v FlitsFor(17)=%v", FlitsFor(16), FlitsFor(17))
	}
}

func TestPacketsForSmallVsLargeMessages(t *testing.T) {
	total := 1e6
	large := PacketsFor(total, 65536)
	small := PacketsFor(total, 8)
	if small <= large {
		t.Fatalf("small messages should need more packets: small=%v large=%v", small, large)
	}
	// 8-byte messages each need a full packet
	if small != math.Ceil(total/8) {
		t.Fatalf("small = %v", small)
	}
	if PacketsFor(0, 8) != 0 {
		t.Fatal("zero bytes should need zero packets")
	}
	// msgBytes <= 0 treats the whole transfer as one message
	if PacketsFor(128, 0) != 2 {
		t.Fatalf("PacketsFor(128, 0) = %v", PacketsFor(128, 0))
	}
}

func TestRankMapper(t *testing.T) {
	m := testMapper(t, 4, 64)
	if m.NumRanks() != 256 {
		t.Fatalf("NumRanks = %d", m.NumRanks())
	}
	// ranks on the same node map to the same router
	r0 := m.RouterOf(0)
	r63 := m.RouterOf(63)
	if r0 != r63 {
		t.Fatal("ranks 0 and 63 should share a node and router")
	}
	// routers list is distinct, ascending, and covers all ranks' routers
	routers := m.Routers()
	for i := 1; i < len(routers); i++ {
		if routers[i] <= routers[i-1] {
			t.Fatal("Routers not strictly ascending")
		}
	}
	found := false
	for _, r := range routers {
		if r == m.RouterOf(100) {
			found = true
		}
	}
	if !found {
		t.Fatal("rank 100's router missing from Routers()")
	}
}

func TestPatternBuilderNormalizes(t *testing.T) {
	b := NewPatternBuilder()
	b.Add(1, 2, 3, 30)
	b.Add(2, 3, 1, 10)
	p := b.Build()
	if p.NumPairs() != 2 {
		t.Fatalf("NumPairs = %d", p.NumPairs())
	}
	flows := p.Instantiate(100, 1000, 0.9, nil)
	var vol, msg float64
	for _, f := range flows {
		vol += f.Flits
		msg += f.Packets
		if f.RequestFraction != 0.9 {
			t.Fatal("request fraction not propagated")
		}
	}
	if math.Abs(vol-100) > 1e-9 || math.Abs(msg-1000) > 1e-9 {
		t.Fatalf("instantiated totals = %v flits, %v packets", vol, msg)
	}
	// proportions preserved: pair (1,2) has 3/4 of volume
	for _, f := range flows {
		if f.Src == 1 && math.Abs(f.Flits-75) > 1e-9 {
			t.Fatalf("pair (1,2) flits = %v, want 75", f.Flits)
		}
	}
}

func TestPatternBuilderDropsSelfAndZero(t *testing.T) {
	b := NewPatternBuilder()
	b.Add(5, 5, 10, 10) // self traffic stays on-chip
	b.Add(1, 2, 0, 0)   // no weight
	p := b.Build()
	if !p.Empty() {
		t.Fatalf("pattern should be empty, has %d pairs", p.NumPairs())
	}
	if got := p.Instantiate(10, 10, 1, nil); len(got) != 0 {
		t.Fatal("empty pattern should instantiate no flows")
	}
}

func TestPatternDeterministicOrder(t *testing.T) {
	mk := func() *Pattern {
		b := NewPatternBuilder()
		b.Add(9, 1, 1, 1)
		b.Add(2, 7, 1, 1)
		b.Add(2, 3, 1, 1)
		return b.Build()
	}
	a, bb := mk(), mk()
	fa := a.Instantiate(1, 1, 1, nil)
	fb := bb.Instantiate(1, 1, 1, nil)
	for i := range fa {
		if fa[i].Src != fb[i].Src || fa[i].Dst != fb[i].Dst {
			t.Fatal("pattern order not deterministic")
		}
	}
	// ascending (src, dst)
	for i := 1; i < len(fa); i++ {
		if fa[i].Src < fa[i-1].Src {
			t.Fatal("flows not sorted")
		}
	}
}

func TestStencil4D(t *testing.T) {
	m := testMapper(t, 16, 16) // 256 ranks = 4x4x4x4, 16 nodes span 4 routers
	b := NewPatternBuilder()
	if err := b.AddStencil4D(m, [4]int{4, 4, 4, 4}); err != nil {
		t.Fatal(err)
	}
	p := b.Build()
	if p.Empty() {
		t.Fatal("stencil pattern empty")
	}
	// wrong dims error
	if err := NewPatternBuilder().AddStencil4D(m, [4]int{4, 4, 4, 2}); err == nil {
		t.Fatal("expected dims mismatch error")
	}
}

func TestStencil3D(t *testing.T) {
	m := testMapper(t, 16, 4) // 64 ranks = 4x4x4, 16 nodes span 4 routers
	b := NewPatternBuilder()
	if err := b.AddStencil3D(m, [3]int{4, 4, 4}); err != nil {
		t.Fatal(err)
	}
	if b.Build().Empty() {
		t.Fatal("3D stencil pattern empty")
	}
	if err := NewPatternBuilder().AddStencil3D(m, [3]int{4, 4, 5}); err == nil {
		t.Fatal("expected dims mismatch error")
	}
}

func TestStencilLocalityBeatsIrregular(t *testing.T) {
	// A block-placed stencil should put much of its traffic on few router
	// pairs; an irregular pattern spreads over many more pairs.
	m := testMapper(t, 32, 8) // 256 ranks over 8 routers
	sb := NewPatternBuilder()
	if err := sb.AddStencil4D(m, [4]int{4, 4, 4, 4}); err != nil {
		t.Fatal(err)
	}
	ib := NewPatternBuilder()
	ib.AddIrregular(m, 16, 1)
	if sb.Build().NumPairs() >= ib.Build().NumPairs() {
		t.Fatalf("stencil pairs %d should be < irregular pairs %d",
			sb.Build().NumPairs(), ib.Build().NumPairs())
	}
}

func TestAllreduceTouchesAllRouters(t *testing.T) {
	m := testMapper(t, 8, 8) // 64 ranks
	b := NewPatternBuilder()
	b.AddAllreduce(m, 1)
	p := b.Build()
	if p.Empty() {
		t.Fatal("allreduce pattern empty")
	}
	// every router appears as a source
	srcs := map[topology.RouterID]bool{}
	for _, f := range p.Instantiate(1, 1, 1, nil) {
		srcs[f.Src] = true
	}
	for _, r := range m.Routers() {
		if !srcs[r] {
			t.Fatalf("router %d never sends in allreduce", r)
		}
	}
}

func TestAllreduceTinyJob(t *testing.T) {
	m := testMapper(t, 1, 1)
	b := NewPatternBuilder()
	b.AddAllreduce(m, 1) // single rank: no-op, must not panic
	if !b.Build().Empty() {
		t.Fatal("single-rank allreduce should be empty")
	}
}

func TestIrregularDeterministic(t *testing.T) {
	m := testMapper(t, 4, 16)
	b1 := NewPatternBuilder()
	b1.AddIrregular(m, 8, 1)
	b2 := NewPatternBuilder()
	b2.AddIrregular(m, 8, 1)
	f1 := b1.Build().Instantiate(1, 1, 1, nil)
	f2 := b2.Build().Instantiate(1, 1, 1, nil)
	if len(f1) != len(f2) {
		t.Fatal("irregular pattern not deterministic")
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("irregular pattern not deterministic")
		}
	}
}

func TestUniformAllPairs(t *testing.T) {
	m := testMapper(t, 8, 4)
	b := NewPatternBuilder()
	b.AddUniform(m, 1)
	routers := m.Routers()
	want := len(routers) * (len(routers) - 1)
	if got := b.Build().NumPairs(); got != want {
		t.Fatalf("uniform pairs = %d, want %d", got, want)
	}
}

func TestIOTrafficTargetsIORouters(t *testing.T) {
	m := testMapper(t, 4, 4)
	b := NewPatternBuilder()
	b.AddIOTraffic(m, 1)
	p := b.Build()
	if p.Empty() {
		t.Fatal("io pattern empty")
	}
	ios := map[topology.RouterID]bool{}
	for _, r := range m.Topo.IORouters() {
		ios[r] = true
	}
	for _, f := range p.Instantiate(1, 1, 1, nil) {
		if !ios[f.Dst] {
			t.Fatalf("io flow destined to non-io router %d", f.Dst)
		}
	}
}

func TestInstantiateAppends(t *testing.T) {
	b := NewPatternBuilder()
	b.Add(1, 2, 1, 1)
	p := b.Build()
	buf := p.Instantiate(10, 10, 1, nil)
	buf = p.Instantiate(20, 20, 1, buf[:0])
	if len(buf) != 1 || buf[0].Flits != 20 {
		t.Fatalf("reused buffer wrong: %+v", buf)
	}
}

func TestDownsample(t *testing.T) {
	b := NewPatternBuilder()
	// 10 pairs with increasing weight
	for i := 0; i < 10; i++ {
		b.Add(topology.RouterID(i), topology.RouterID(i+20), float64(i+1), float64(i+1))
	}
	p := b.Build()
	down := p.Downsample(4)
	if down.NumPairs() != 4 {
		t.Fatalf("pairs = %d, want 4", down.NumPairs())
	}
	// totals re-normalized to 1
	flows := down.Instantiate(1, 1, 1, nil)
	var vol, msg float64
	heaviest := false
	for _, f := range flows {
		vol += f.Flits
		msg += f.Packets
		if f.Src == 9 {
			heaviest = true
		}
	}
	if math.Abs(vol-1) > 1e-9 || math.Abs(msg-1) > 1e-9 {
		t.Fatalf("downsampled totals: vol=%v msg=%v", vol, msg)
	}
	if !heaviest {
		t.Fatal("downsample dropped the heaviest pair")
	}
	// no-ops
	if p.Downsample(100) != p || p.Downsample(0) != p {
		t.Fatal("oversized/zero cap should return the same pattern")
	}
}
