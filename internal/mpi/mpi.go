// Package mpi models the message-passing layer of the applications: the
// MPI routine taxonomy used by the paper's mpiP profiles (Figures 4 and 5),
// per-routine time accounting, and the translation of rank-level
// communication patterns (stencils, irregular graph exchanges, collectives)
// into router-level traffic flows for the network simulator.
//
// The key structure is Pattern: a normalized router-to-router traffic
// shape built once per job from its placement (rank → node → router) and
// then instantiated every time step with that step's traffic volume. This
// mirrors reality — an application's communication graph is fixed by its
// decomposition while per-step volumes vary — and keeps the simulation cost
// per step proportional to the number of distinct router pairs, not ranks.
package mpi

import (
	"fmt"
	"math"
	"sort"

	"dragonvar/internal/netsim"
	"dragonvar/internal/topology"
)

// Routine enumerates the MPI routines the paper's profiles distinguish.
type Routine int

const (
	Isend Routine = iota
	Irecv
	Wait
	Waitall
	Test
	Testall
	Iprobe
	Allreduce
	Barrier
	Other

	// NumRoutines is the number of tracked routines.
	NumRoutines int = iota
)

var routineNames = [NumRoutines]string{
	"Isend", "Irecv", "Wait", "Waitall", "Test", "Testall", "Iprobe",
	"Allreduce", "Barrier", "Other",
}

// String returns the routine name as it appears in the paper's figures.
func (r Routine) String() string {
	if r < 0 || int(r) >= NumRoutines {
		return fmt.Sprintf("Routine(%d)", int(r))
	}
	return routineNames[r]
}

// Profile is per-routine time in seconds, the unit of the mpiP-style
// decomposition in Figures 4 and 5.
type Profile [NumRoutines]float64

// Total returns the total MPI time of the profile.
func (p *Profile) Total() float64 {
	var s float64
	for _, v := range p {
		s += v
	}
	return s
}

// Add accumulates other into p.
func (p *Profile) Add(other *Profile) {
	for i, v := range other {
		p[i] += v
	}
}

// Scaled returns a copy of p with every routine multiplied by f.
func (p *Profile) Scaled(f float64) Profile {
	var out Profile
	for i, v := range p {
		out[i] = v * f
	}
	return out
}

// Dominant returns the routines sorted by descending time share, with
// their fractions of the total. Used to report the "dominant MPI routines"
// of §III-B.
func (p *Profile) Dominant() []RoutineShare {
	total := p.Total()
	out := make([]RoutineShare, 0, NumRoutines)
	for i, v := range p {
		if v <= 0 {
			continue
		}
		share := 0.0
		if total > 0 {
			share = v / total
		}
		out = append(out, RoutineShare{Routine: Routine(i), Seconds: v, Share: share})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seconds > out[b].Seconds })
	return out
}

// RoutineShare is one row of a profile breakdown.
type RoutineShare struct {
	Routine Routine
	Seconds float64
	Share   float64
}

// Aries-flavored wire constants: message bytes are carried in 16-byte
// flits, packets hold up to 64 bytes of payload.
const (
	FlitBytes   = 16
	PacketBytes = 64
)

// FlitsFor returns the number of flits needed to carry the given bytes.
func FlitsFor(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return math.Ceil(bytes / FlitBytes)
}

// PacketsFor returns the number of packets for a transfer of the given
// total bytes sent as messages of msgBytes each (the per-message header
// cost makes many small messages far more packet-hungry than one large
// one).
func PacketsFor(bytes, msgBytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	if msgBytes <= 0 {
		msgBytes = bytes
	}
	msgs := math.Ceil(bytes / msgBytes)
	pktsPerMsg := math.Ceil(msgBytes / PacketBytes)
	return msgs * pktsPerMsg
}

// RankMapper maps MPI ranks to the routers of a job's placement. Ranks are
// laid out block-wise: ranks [i*RanksPerNode, (i+1)*RanksPerNode) live on
// Nodes[i], matching Slurm's default distribution.
type RankMapper struct {
	Topo         *topology.Dragonfly
	Nodes        []topology.NodeID
	RanksPerNode int
}

// NumRanks returns the job's total rank count.
func (m *RankMapper) NumRanks() int { return len(m.Nodes) * m.RanksPerNode }

// RouterOf returns the router hosting the given rank.
func (m *RankMapper) RouterOf(rank int) topology.RouterID {
	node := m.Nodes[rank/m.RanksPerNode]
	return m.Topo.RouterOfNode(node)
}

// Routers returns the distinct routers of the placement, ascending.
func (m *RankMapper) Routers() []topology.RouterID {
	seen := make(map[topology.RouterID]bool)
	var out []topology.RouterID
	for _, n := range m.Nodes {
		r := m.Topo.RouterOfNode(n)
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Pattern is a normalized router-to-router traffic shape: the volume and
// message weights sum to 1 across all directed router pairs. Instantiate
// scales it to a concrete per-step volume.
type Pattern struct {
	flows []netsim.Flow // Flits and Packets hold normalized weights
}

// NumPairs returns the number of distinct directed router pairs.
func (p *Pattern) NumPairs() int { return len(p.flows) }

// Empty reports whether the pattern carries no traffic (single-router
// jobs communicate through the local router only).
func (p *Pattern) Empty() bool { return len(p.flows) == 0 }

// Instantiate scales the pattern to totalFlits and totalPackets for one
// step, appending into dst (pass nil to allocate) and returning it. All
// flows share the given request fraction.
func (p *Pattern) Instantiate(totalFlits, totalPackets, reqFrac float64, dst []netsim.Flow) []netsim.Flow {
	for _, f := range p.flows {
		dst = append(dst, netsim.Flow{
			Src:             f.Src,
			Dst:             f.Dst,
			Flits:           f.Flits * totalFlits,
			Packets:         f.Packets * totalPackets,
			RequestFraction: reqFrac,
		})
	}
	return dst
}

// Downsample returns a pattern with at most maxPairs router pairs, keeping
// the heaviest pairs and renormalizing so total volume is preserved. Used
// to cap the memory footprint of very large background jobs, whose exact
// pair set does not matter — only where their load lands in aggregate.
func (p *Pattern) Downsample(maxPairs int) *Pattern {
	if maxPairs <= 0 || len(p.flows) <= maxPairs {
		return p
	}
	flows := make([]netsim.Flow, len(p.flows))
	copy(flows, p.flows)
	sort.Slice(flows, func(i, j int) bool { return flows[i].Flits > flows[j].Flits })
	flows = flows[:maxPairs]
	var vol, msg float64
	for _, f := range flows {
		vol += f.Flits
		msg += f.Packets
	}
	for i := range flows {
		if vol > 0 {
			flows[i].Flits /= vol
		}
		if msg > 0 {
			flows[i].Packets /= msg
		}
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Src != flows[j].Src {
			return flows[i].Src < flows[j].Src
		}
		return flows[i].Dst < flows[j].Dst
	})
	return &Pattern{flows: flows}
}

// PatternBuilder accumulates weighted router-pair traffic and normalizes
// it into a Pattern. Accumulation lives in a dense flow slice (insertion
// order) with a pair → index map beside it: the per-Add hot path updates a
// slice element in place instead of chasing per-pair heap pointers, and
// the map holds plain int32 values the garbage collector never scans.
type PatternBuilder struct {
	index map[uint64]int32
	flows []netsim.Flow
}

// NewPatternBuilder returns an empty builder.
func NewPatternBuilder() *PatternBuilder {
	return &PatternBuilder{index: make(map[uint64]int32)}
}

func pairKey(a, b topology.RouterID) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// Add accumulates volume and message weight between two routers. Traffic
// between a router and itself stays on-chip and is dropped.
func (b *PatternBuilder) Add(src, dst topology.RouterID, volWeight, msgWeight float64) {
	if src == dst || (volWeight <= 0 && msgWeight <= 0) {
		return
	}
	k := pairKey(src, dst)
	i, ok := b.index[k]
	if !ok {
		i = int32(len(b.flows))
		b.flows = append(b.flows, netsim.Flow{Src: src, Dst: dst})
		b.index[k] = i
	}
	f := &b.flows[i]
	f.Flits += volWeight
	f.Packets += msgWeight
}

// Build normalizes the accumulated weights into a Pattern. The builder can
// be reused afterwards (it keeps its state).
func (b *PatternBuilder) Build() *Pattern {
	p := &Pattern{flows: make([]netsim.Flow, len(b.flows))}
	copy(p.flows, b.flows)
	// sort BEFORE totaling: float summation is order-sensitive, and
	// accumulation order must never leak into results
	sort.Slice(p.flows, func(i, j int) bool {
		if p.flows[i].Src != p.flows[j].Src {
			return p.flows[i].Src < p.flows[j].Src
		}
		return p.flows[i].Dst < p.flows[j].Dst
	})
	var volTotal, msgTotal float64
	for _, f := range p.flows {
		volTotal += f.Flits
		msgTotal += f.Packets
	}
	for i := range p.flows {
		if volTotal > 0 {
			p.flows[i].Flits /= volTotal
		}
		if msgTotal > 0 {
			p.flows[i].Packets /= msgTotal
		}
	}
	return p
}

// AddStencil4D adds the halo-exchange pattern of a 4D stencil (MILC's
// su3_rmd does a 4D nearest-neighbor exchange): ranks are arranged in a
// dims[0]×dims[1]×dims[2]×dims[3] torus and every rank exchanges equal
// volume with its 8 neighbors. dims must multiply to m.NumRanks().
func (b *PatternBuilder) AddStencil4D(m *RankMapper, dims [4]int) error {
	p := dims[0] * dims[1] * dims[2] * dims[3]
	if p != m.NumRanks() {
		return fmt.Errorf("mpi: stencil dims %v = %d ranks, placement has %d", dims, p, m.NumRanks())
	}
	idx := func(c [4]int) int {
		return ((c[0]*dims[1]+c[1])*dims[2]+c[2])*dims[3] + c[3]
	}
	var c [4]int
	for c[0] = 0; c[0] < dims[0]; c[0]++ {
		for c[1] = 0; c[1] < dims[1]; c[1]++ {
			for c[2] = 0; c[2] < dims[2]; c[2]++ {
				for c[3] = 0; c[3] < dims[3]; c[3]++ {
					rank := idx(c)
					src := m.RouterOf(rank)
					for d := 0; d < 4; d++ {
						for _, dir := range [2]int{-1, 1} {
							nc := c
							nc[d] = (nc[d] + dir + dims[d]) % dims[d]
							dst := m.RouterOf(idx(nc))
							b.Add(src, dst, 1, 1)
						}
					}
				}
			}
		}
	}
	return nil
}

// AddStencil3D adds a 3D halo-exchange (AMG's structured multigrid
// communication is dominated by 3D neighbor exchanges at each level).
func (b *PatternBuilder) AddStencil3D(m *RankMapper, dims [3]int) error {
	p := dims[0] * dims[1] * dims[2]
	if p != m.NumRanks() {
		return fmt.Errorf("mpi: stencil dims %v = %d ranks, placement has %d", dims, p, m.NumRanks())
	}
	idx := func(x, y, z int) int { return (x*dims[1]+y)*dims[2] + z }
	for x := 0; x < dims[0]; x++ {
		for y := 0; y < dims[1]; y++ {
			for z := 0; z < dims[2]; z++ {
				src := m.RouterOf(idx(x, y, z))
				neigh := [][3]int{
					{(x + 1) % dims[0], y, z}, {(x - 1 + dims[0]) % dims[0], y, z},
					{x, (y + 1) % dims[1], z}, {x, (y - 1 + dims[1]) % dims[1], z},
					{x, y, (z + 1) % dims[2]}, {x, y, (z - 1 + dims[2]) % dims[2]},
				}
				for _, nc := range neigh {
					b.Add(src, m.RouterOf(idx(nc[0], nc[1], nc[2])), 1, 1)
				}
			}
		}
	}
	return nil
}

// AddAllreduce adds the traffic of a recursive-doubling allreduce over all
// ranks: log2(P) rounds in which rank r exchanges with rank r XOR 2^k.
// weight scales the collective's volume relative to other pattern
// components; message weight is the same per exchange (allreduce messages
// are small but numerous).
func (b *PatternBuilder) AddAllreduce(m *RankMapper, weight float64) {
	p := m.NumRanks()
	if p < 2 {
		return
	}
	rounds := 0
	for 1<<rounds < p {
		rounds++
	}
	for k := 0; k < rounds; k++ {
		bit := 1 << k
		for r := 0; r < p; r++ {
			partner := r ^ bit
			if partner >= p || partner < r {
				continue // count each exchange once per direction below
			}
			a := m.RouterOf(r)
			c := m.RouterOf(partner)
			b.Add(a, c, weight, weight)
			b.Add(c, a, weight, weight)
		}
	}
}

// AddIrregular adds an irregular all-to-some exchange: every rank sends to
// `fanout` pseudo-random peers with the given weight. The peer choice is a
// deterministic function of the rank (a multiplicative hash), modeling the
// static-but-unstructured communication graphs of graph analytics codes
// like miniVite.
func (b *PatternBuilder) AddIrregular(m *RankMapper, fanout int, weight float64) {
	p := m.NumRanks()
	if p < 2 {
		return
	}
	for r := 0; r < p; r++ {
		src := m.RouterOf(r)
		h := uint64(r)*0x9e3779b97f4a7c15 + 0x853c49e6748fea9b
		for f := 0; f < fanout; f++ {
			h ^= h >> 33
			h *= 0xff51afd7ed558ccd
			h ^= h >> 33
			peer := int(h % uint64(p))
			if peer == r {
				peer = (peer + 1) % p
			}
			b.Add(src, m.RouterOf(peer), weight, weight)
		}
	}
}

// AddUniform adds an all-to-all style uniform exchange over the job's
// routers, each directed pair with equal weight. Used for background jobs
// whose detailed pattern we do not model.
func (b *PatternBuilder) AddUniform(m *RankMapper, weight float64) {
	routers := m.Routers()
	for _, a := range routers {
		for _, c := range routers {
			if a != c {
				b.Add(a, c, weight, weight)
			}
		}
	}
}

// AddIOTraffic adds flows from every job router to the machine's I/O
// routers (checkpoint/filesystem traffic). Weight is split evenly over the
// I/O routers.
func (b *PatternBuilder) AddIOTraffic(m *RankMapper, weight float64) {
	ios := m.Topo.IORouters()
	if len(ios) == 0 {
		return
	}
	w := weight / float64(len(ios))
	for _, r := range m.Routers() {
		for _, io := range ios {
			b.Add(r, io, w, w)
		}
	}
}
