package tree

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
)

// Pin regressorWire's process-global gob id at init so serialized tree
// bytes don't depend on encode order within the process (gob wire ids
// come from a global counter; see internal/dataset/gob_init.go).
func init() {
	if err := gob.NewEncoder(io.Discard).Encode(regressorWire{}); err != nil {
		panic("tree: gob warm-up: " + err.Error())
	}
}

// regressorWire is the gob wire form of a Regressor. The struct-of-arrays
// layout mirrors the node array exactly (column i describes node i), so a
// decoded tree predicts byte-identically to the fitted one: every field is
// copied verbatim, and gob round-trips float64 values exactly.
type regressorWire struct {
	Feature    []int32
	Threshold  []float64
	Left       []int32
	Right      []int32
	Value      []float64
	Importance []float64
}

// GobEncode implements gob.GobEncoder, making fitted trees persistable by
// internal/modelstore (directly, and inside boosted ensembles).
func (t *Regressor) GobEncode() ([]byte, error) {
	w := regressorWire{
		Feature:    make([]int32, len(t.nodes)),
		Threshold:  make([]float64, len(t.nodes)),
		Left:       make([]int32, len(t.nodes)),
		Right:      make([]int32, len(t.nodes)),
		Value:      make([]float64, len(t.nodes)),
		Importance: t.importance,
	}
	for i, nd := range t.nodes {
		w.Feature[i] = int32(nd.feature)
		w.Threshold[i] = nd.threshold
		w.Left[i] = nd.left
		w.Right[i] = nd.right
		w.Value[i] = nd.value
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (t *Regressor) GobDecode(b []byte) error {
	var w regressorWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	n := len(w.Feature)
	if len(w.Threshold) != n || len(w.Left) != n || len(w.Right) != n || len(w.Value) != n {
		return fmt.Errorf("tree: corrupt wire form: column lengths disagree (%d/%d/%d/%d/%d)",
			n, len(w.Threshold), len(w.Left), len(w.Right), len(w.Value))
	}
	t.nodes = make([]node, n)
	for i := range t.nodes {
		left, right := w.Left[i], w.Right[i]
		if w.Feature[i] >= 0 && (left < 0 || left >= int32(n) || right < 0 || right >= int32(n)) {
			return fmt.Errorf("tree: corrupt wire form: node %d children (%d, %d) out of [0, %d)",
				i, left, right, n)
		}
		t.nodes[i] = node{
			feature:   int(w.Feature[i]),
			threshold: w.Threshold[i],
			left:      left,
			right:     right,
			value:     w.Value[i],
		}
	}
	t.importance = w.Importance
	return nil
}
