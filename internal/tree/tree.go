// Package tree implements histogram-based CART regression trees: the base
// learners of the gradient boosted models (§IV-B). Features are quantized
// into bins once per fit, so finding the best split of a node costs
// O(samples + bins) per feature instead of a sort. Gain-based feature
// importances are accumulated during fitting; they drive the recursive
// feature elimination of the deviation analysis.
package tree

import (
	"math"
	"sort"

	"dragonvar/internal/linalg"
	"dragonvar/internal/rng"
)

// Options configures tree induction.
type Options struct {
	MaxDepth       int // maximum depth (root = depth 0); default 3
	MinSamplesLeaf int // minimum samples per leaf; default 5
	Bins           int // histogram bins per feature; default 32
}

func (o Options) withDefaults() Options {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 3
	}
	if o.MinSamplesLeaf <= 0 {
		o.MinSamplesLeaf = 5
	}
	if o.Bins <= 1 {
		o.Bins = 32
	}
	return o
}

// Regressor is a fitted regression tree.
type Regressor struct {
	nodes      []node
	importance []float64
}

type node struct {
	feature     int     // split feature; -1 for leaves
	threshold   float64 // go left when x[feature] <= threshold
	left, right int32
	value       float64 // prediction at leaves
}

// Binner quantizes feature columns into small integer bins using
// quantile-spaced edges. One Binner can be shared by all trees of a
// boosting ensemble, since the feature matrix does not change between
// boosting rounds.
type Binner struct {
	edges [][]float64 // per feature, ascending bin upper edges (len bins-1)
	bins  int
}

// NewBinner computes quantile bin edges from the rows of x listed in idx
// (all rows when idx is nil).
func NewBinner(x *linalg.Matrix, idx []int, bins int) *Binner {
	if bins <= 1 {
		bins = 32
	}
	n := x.Rows
	rowAt := func(i int) []float64 { return x.Row(i) }
	if idx != nil {
		n = len(idx)
		rowAt = func(i int) []float64 { return x.Row(idx[i]) }
	}
	b := &Binner{bins: bins, edges: make([][]float64, x.Cols)}
	vals := make([]float64, n)
	for f := 0; f < x.Cols; f++ {
		for i := 0; i < n; i++ {
			vals[i] = rowAt(i)[f]
		}
		sort.Float64s(vals)
		var edges []float64
		for e := 1; e < bins; e++ {
			v := vals[e*n/bins]
			if len(edges) == 0 || v > edges[len(edges)-1] {
				edges = append(edges, v)
			}
		}
		b.edges[f] = edges
	}
	return b
}

// Bin returns the bin index of value v for feature f.
func (b *Binner) Bin(f int, v float64) int {
	edges := b.edges[f]
	// binary search for the first edge > v
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Threshold returns the split threshold corresponding to "bin <= k".
func (b *Binner) Threshold(f, k int) float64 {
	edges := b.edges[f]
	if k < len(edges) {
		return edges[k]
	}
	if len(edges) == 0 {
		return math.Inf(1)
	}
	return edges[len(edges)-1]
}

// BinMatrix quantizes all of x once; rows correspond to x's rows.
func (b *Binner) BinMatrix(x *linalg.Matrix) [][]uint8 {
	out := make([][]uint8, x.Rows)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		bi := make([]uint8, x.Cols)
		for f := range row {
			bi[f] = uint8(b.Bin(f, row[f]))
		}
		out[i] = bi
	}
	return out
}

// FitBinned grows a tree on pre-binned data. idx selects the training
// rows; y holds targets for ALL rows (indexed by idx). features lists the
// usable feature columns (nil = all). The returned tree's importances have
// x.Cols entries.
func FitBinned(binned [][]uint8, binner *Binner, y []float64, idx []int, features []int, opt Options, s *rng.Stream) *Regressor {
	opt = opt.withDefaults()
	numFeatures := len(binner.edges)
	if features == nil {
		features = make([]int, numFeatures)
		for i := range features {
			features[i] = i
		}
	}
	t := &Regressor{importance: make([]float64, numFeatures)}
	work := make([]int, len(idx))
	copy(work, idx)
	t.build(binned, binner, y, work, features, 0, opt)
	return t
}

// build grows the subtree over samples and returns its node index.
func (t *Regressor) build(binned [][]uint8, binner *Binner, y []float64, samples []int, features []int, depth int, opt Options) int32 {
	var sum float64
	for _, i := range samples {
		sum += y[i]
	}
	n := float64(len(samples))
	mean := sum / n

	self := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{feature: -1, value: mean, left: -1, right: -1})

	if depth >= opt.MaxDepth || len(samples) < 2*opt.MinSamplesLeaf {
		return self
	}

	bestGain := 0.0
	bestFeature := -1
	bestBin := -1
	parentScore := sum * sum / n

	binSum := make([]float64, opt.Bins)
	binCnt := make([]float64, opt.Bins)
	for _, f := range features {
		nBins := len(binner.edges[f]) + 1
		if nBins < 2 {
			continue
		}
		for b := 0; b < nBins; b++ {
			binSum[b] = 0
			binCnt[b] = 0
		}
		for _, i := range samples {
			b := binned[i][f]
			binSum[b] += y[i]
			binCnt[b]++
		}
		var leftSum, leftCnt float64
		for b := 0; b < nBins-1; b++ {
			leftSum += binSum[b]
			leftCnt += binCnt[b]
			rightCnt := n - leftCnt
			if leftCnt < float64(opt.MinSamplesLeaf) || rightCnt < float64(opt.MinSamplesLeaf) {
				continue
			}
			rightSum := sum - leftSum
			gain := leftSum*leftSum/leftCnt + rightSum*rightSum/rightCnt - parentScore
			if gain > bestGain {
				bestGain = gain
				bestFeature = f
				bestBin = b
			}
		}
	}

	if bestFeature < 0 || bestGain <= 1e-12 {
		return self
	}

	// partition samples in place
	lo, hi := 0, len(samples)
	for lo < hi {
		if int(binned[samples[lo]][bestFeature]) <= bestBin {
			lo++
		} else {
			hi--
			samples[lo], samples[hi] = samples[hi], samples[lo]
		}
	}

	t.importance[bestFeature] += bestGain
	t.nodes[self].feature = bestFeature
	t.nodes[self].threshold = binner.Threshold(bestFeature, bestBin)
	left := t.build(binned, binner, y, samples[:lo], features, depth+1, opt)
	right := t.build(binned, binner, y, samples[lo:], features, depth+1, opt)
	t.nodes[self].left = left
	t.nodes[self].right = right
	return self
}

// Fit grows a tree on raw (unbinned) data over all rows.
func Fit(x *linalg.Matrix, y []float64, opt Options, s *rng.Stream) *Regressor {
	opt = opt.withDefaults()
	binner := NewBinner(x, nil, opt.Bins)
	binned := binner.BinMatrix(x)
	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}
	return FitBinned(binned, binner, y, idx, nil, opt, s)
}

// Predict returns the tree's prediction for one feature row.
func (t *Regressor) Predict(row []float64) float64 {
	i := int32(0)
	for {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return nd.value
		}
		if row[nd.feature] <= nd.threshold {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// Importance returns the total split gain per feature. The slice aliases
// the tree's storage; callers must not modify it.
func (t *Regressor) Importance() []float64 { return t.importance }

// NumNodes returns the size of the fitted tree.
func (t *Regressor) NumNodes() int { return len(t.nodes) }
