package tree

import (
	"math"
	"testing"

	"dragonvar/internal/linalg"
	"dragonvar/internal/rng"
)

// stepData builds y = 10 when x0 <= 0.5 else 20, with an irrelevant x1.
func stepData(n int, s *rng.Stream) (*linalg.Matrix, []float64) {
	x := linalg.NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, s.Float64())
		x.Set(i, 1, s.Float64())
		if x.At(i, 0) <= 0.5 {
			y[i] = 10
		} else {
			y[i] = 20
		}
	}
	return x, y
}

func TestTreeLearnsStepFunction(t *testing.T) {
	s := rng.New(1)
	x, y := stepData(500, s)
	tr := Fit(x, y, Options{MaxDepth: 2}, s)
	// histogram binning quantizes the threshold, so a sliver near the
	// boundary may land wrong — judge by mean error, not max
	var sumErr float64
	for i := 0; i < x.Rows; i++ {
		sumErr += math.Abs(tr.Predict(x.Row(i)) - y[i])
	}
	if mean := sumErr / float64(x.Rows); mean > 0.5 {
		t.Fatalf("mean error = %v on a nearly separable step", mean)
	}
}

func TestTreeImportancePicksRelevantFeature(t *testing.T) {
	s := rng.New(2)
	x, y := stepData(500, s)
	tr := Fit(x, y, Options{MaxDepth: 3}, s)
	imp := tr.Importance()
	if imp[0] <= imp[1] {
		t.Fatalf("importance = %v; feature 0 drives the target", imp)
	}
	if imp[1] > imp[0]*0.2 {
		t.Fatalf("irrelevant feature has %v of relevant's importance", imp[1]/imp[0])
	}
}

func TestTreeConstantTarget(t *testing.T) {
	s := rng.New(3)
	x := linalg.NewMatrix(50, 2)
	y := make([]float64, 50)
	for i := range y {
		x.Set(i, 0, s.Float64())
		y[i] = 7
	}
	tr := Fit(x, y, Options{}, s)
	if tr.NumNodes() != 1 {
		t.Fatalf("constant target should give a single leaf, got %d nodes", tr.NumNodes())
	}
	if tr.Predict([]float64{0.3, 0.4}) != 7 {
		t.Fatal("constant prediction wrong")
	}
}

func TestMaxDepthRespected(t *testing.T) {
	s := rng.New(4)
	n := 800
	x := linalg.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := s.Float64()
		x.Set(i, 0, v)
		y[i] = v * v * 100 // smooth, always splittable
	}
	tr := Fit(x, y, Options{MaxDepth: 2, MinSamplesLeaf: 1}, s)
	// depth 2: at most 1 + 2 + 4 = 7 nodes
	if tr.NumNodes() > 7 {
		t.Fatalf("depth-2 tree has %d nodes", tr.NumNodes())
	}
}

func TestMinSamplesLeaf(t *testing.T) {
	s := rng.New(5)
	x, y := stepData(40, s)
	tr := Fit(x, y, Options{MaxDepth: 10, MinSamplesLeaf: 30}, s)
	// 40 samples cannot split into two leaves of >= 30
	if tr.NumNodes() != 1 {
		t.Fatalf("expected single leaf, got %d nodes", tr.NumNodes())
	}
}

func TestBinnerMonotone(t *testing.T) {
	x := linalg.NewMatrix(100, 1)
	for i := 0; i < 100; i++ {
		x.Set(i, 0, float64(i))
	}
	b := NewBinner(x, nil, 8)
	prev := -1
	for v := 0.0; v < 100; v += 1 {
		bin := b.Bin(0, v)
		if bin < prev {
			t.Fatalf("bins not monotone at %v", v)
		}
		if bin > 7 {
			t.Fatalf("bin %d out of range", bin)
		}
		prev = bin
	}
}

func TestBinnerConstantFeature(t *testing.T) {
	x := linalg.NewMatrix(10, 1)
	x.Fill(5)
	b := NewBinner(x, nil, 8)
	if got := b.Bin(0, 5); got != 0 {
		t.Fatalf("constant feature bin = %d", got)
	}
	// threshold must still be usable
	_ = b.Threshold(0, 0)
}

func TestBinnerSubsetIndices(t *testing.T) {
	x := linalg.NewMatrix(100, 1)
	for i := 0; i < 100; i++ {
		x.Set(i, 0, float64(i))
	}
	// binner built only from small values must map big values to the top bin
	idx := make([]int, 10)
	for i := range idx {
		idx[i] = i // values 0..9
	}
	b := NewBinner(x, idx, 4)
	if b.Bin(0, 99) != b.Bin(0, 1000) {
		t.Fatal("values beyond edges should share the top bin")
	}
}

func TestFitBinnedFeatureSubset(t *testing.T) {
	s := rng.New(6)
	x, y := stepData(300, s)
	opt := Options{MaxDepth: 3}.withDefaults()
	binner := NewBinner(x, nil, opt.Bins)
	binned := binner.BinMatrix(x)
	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}
	// restrict to the irrelevant feature: tree should be nearly useless
	tr := FitBinned(binned, binner, y, idx, []int{1}, opt, s)
	if imp := tr.Importance(); imp[0] != 0 {
		t.Fatal("excluded feature must have zero importance")
	}
	var sse float64
	for i := 0; i < x.Rows; i++ {
		d := tr.Predict(x.Row(i)) - y[i]
		sse += d * d
	}
	// variance of y is ~25 per sample; feature 1 cannot reduce it much
	if sse < 20*float64(x.Rows) {
		t.Fatalf("irrelevant feature explained too much: sse=%v", sse)
	}
}

func TestPredictDeterministic(t *testing.T) {
	s := rng.New(7)
	x, y := stepData(200, s)
	tr := Fit(x, y, Options{}, rng.New(8))
	tr2 := Fit(x, y, Options{}, rng.New(8))
	for i := 0; i < x.Rows; i++ {
		if tr.Predict(x.Row(i)) != tr2.Predict(x.Row(i)) {
			t.Fatal("identical fits should predict identically")
		}
	}
}
