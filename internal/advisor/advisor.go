// Package advisor implements the paper's proposed application of its
// findings (§V-A, §VII): a resource manager that uses historical blame
// data to delay scheduling communication-sensitive jobs while known
// network-heavy users are running.
//
// The advisor is trained on the first part of a campaign (it runs the
// mutual-information neighborhood analysis to learn which users predict
// slowdowns) and is evaluated on the rest: if the runs it would have
// delayed really were slower than the ones it would have admitted, the
// blame lists carry actionable signal.
package advisor

import (
	"sort"

	"dragonvar/internal/core"
	"dragonvar/internal/dataset"
)

// Options configures training.
type Options struct {
	// Neighborhood is passed through to the MI analysis.
	Neighborhood core.NeighborhoodOptions
	// MinLists is how many datasets' high-MI lists a user must appear in
	// to be blamed (the paper's Table III keeps users in ≥ 2 lists).
	MinLists int
	// TrainFraction is the leading fraction of campaign days used for
	// training; the rest is evaluation. Default 0.5.
	TrainFraction float64
}

func (o Options) withDefaults() Options {
	if o.MinLists <= 0 {
		o.MinLists = 2
	}
	if o.TrainFraction <= 0 || o.TrainFraction >= 1 {
		o.TrainFraction = 0.5
	}
	return o
}

// Advisor holds the learned blame list.
type Advisor struct {
	blamed   map[string]bool
	trainEnd int // first evaluation day
}

// Blamed returns the learned blame list, sorted.
func (a *Advisor) Blamed() []string {
	out := make([]string, 0, len(a.blamed))
	for u := range a.blamed {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// ShouldDelay reports whether a communication-sensitive job should be
// delayed given the users currently running on the system, and the blamed
// users present.
func (a *Advisor) ShouldDelay(runningUsers []string) (bool, []string) {
	var present []string
	for _, u := range runningUsers {
		if a.blamed[u] {
			present = append(present, u)
		}
	}
	sort.Strings(present)
	return len(present) > 0, present
}

// Train learns the blame list from the leading TrainFraction of campaign
// days: it slices every dataset to its training runs and runs the Table
// III analysis on the slice.
func Train(camp *dataset.Campaign, opt Options) *Advisor {
	opt = opt.withDefaults()
	trainEnd := int(camp.Days * opt.TrainFraction)

	trainCamp := &dataset.Campaign{Seed: camp.Seed, Days: camp.Days}
	for _, ds := range camp.Datasets {
		sliced := &dataset.Dataset{Name: ds.Name, App: ds.App, Nodes: ds.Nodes}
		for _, r := range ds.Runs {
			if r.Day < trainEnd {
				sliced.Runs = append(sliced.Runs, r)
			}
		}
		trainCamp.Datasets = append(trainCamp.Datasets, sliced)
	}
	_, recurring := core.Table3(trainCamp, opt.Neighborhood)

	a := &Advisor{blamed: map[string]bool{}, trainEnd: trainEnd}
	for u, lists := range recurring {
		if lists >= opt.MinLists {
			a.blamed[u] = true
		}
	}
	return a
}

// Evaluation compares the runs the advisor would have delayed with the
// runs it would have admitted, on the held-out part of the campaign.
// Relative performance is each run's total time divided by its dataset's
// best held-out time, so datasets are comparable.
type Evaluation struct {
	Flagged, Admitted               int
	FlaggedMeanRel, AdmittedMeanRel float64
	// Improvement is FlaggedMeanRel − AdmittedMeanRel: how much slower the
	// runs the advisor would have delayed actually were (positive = the
	// advice carries signal).
	Improvement float64
}

// Evaluate replays the held-out runs through the advisor.
func Evaluate(camp *dataset.Campaign, a *Advisor) Evaluation {
	var ev Evaluation
	var fSum, aSum float64
	for _, ds := range camp.Datasets {
		// best held-out time as the normalizer
		best := 0.0
		for _, r := range ds.Runs {
			if r.Day < a.trainEnd {
				continue
			}
			t := r.TotalTime()
			if best == 0 || t < best {
				best = t
			}
		}
		if best == 0 {
			continue
		}
		for _, r := range ds.Runs {
			if r.Day < a.trainEnd {
				continue
			}
			var users []string
			for _, n := range r.Neighbors {
				users = append(users, n.User)
			}
			delay, _ := a.ShouldDelay(users)
			rel := r.TotalTime() / best
			if delay {
				ev.Flagged++
				fSum += rel
			} else {
				ev.Admitted++
				aSum += rel
			}
		}
	}
	if ev.Flagged > 0 {
		ev.FlaggedMeanRel = fSum / float64(ev.Flagged)
	}
	if ev.Admitted > 0 {
		ev.AdmittedMeanRel = aSum / float64(ev.Admitted)
	}
	if ev.Flagged > 0 && ev.Admitted > 0 {
		ev.Improvement = ev.FlaggedMeanRel - ev.AdmittedMeanRel
	}
	return ev
}
