package advisor

import (
	"bytes"
	"encoding/gob"
	"io"
	"sort"
)

// Pin advisorWire's process-global gob id at init so serialized advisor
// bytes don't depend on encode order within the process (gob wire ids
// come from a global counter; see internal/dataset/gob_init.go).
func init() {
	if err := gob.NewEncoder(io.Discard).Encode(advisorWire{}); err != nil {
		panic("advisor: gob warm-up: " + err.Error())
	}
}

// advisorWire is the gob wire form of a trained advisor: the learned blame
// list (sorted, so equal advisors encode to equal bytes) and the first
// evaluation day of the train/eval split.
type advisorWire struct {
	Blamed   []string
	TrainEnd int
}

// GobEncode implements gob.GobEncoder, making trained advisors persistable
// by internal/modelstore.
func (a *Advisor) GobEncode() ([]byte, error) {
	w := advisorWire{Blamed: make([]string, 0, len(a.blamed)), TrainEnd: a.trainEnd}
	for u := range a.blamed {
		w.Blamed = append(w.Blamed, u)
	}
	sort.Strings(w.Blamed)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (a *Advisor) GobDecode(b []byte) error {
	var w advisorWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	a.blamed = make(map[string]bool, len(w.Blamed))
	for _, u := range w.Blamed {
		a.blamed[u] = true
	}
	a.trainEnd = w.TrainEnd
	return nil
}
