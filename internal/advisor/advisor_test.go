package advisor

import (
	"testing"

	"dragonvar/internal/dataset"
)

// syntheticCampaign builds a campaign where User-2's presence causes a 40%
// slowdown, User-20 is noise, over 20 "days" with one run per day per
// dataset.
func syntheticCampaign() *dataset.Campaign {
	camp := &dataset.Campaign{Seed: 1, Days: 20}
	for _, name := range []string{"A-128", "B-128"} {
		ds := &dataset.Dataset{Name: name, App: name[:1], Nodes: 128}
		for day := 0; day < 20; day++ {
			slow := day%3 == 0 // User-2 present every third day
			stepTime := 10.0
			if slow {
				stepTime = 14.0
			}
			r := &dataset.Run{Dataset: name, RunID: day, Day: day, NumRouters: 32, NumGroups: 4}
			for s := 0; s < 5; s++ {
				r.StepTimes = append(r.StepTimes, stepTime)
				r.Compute = append(r.Compute, 1)
				r.Counters = append(r.Counters, [13]float64{})
				r.IO = append(r.IO, [4]float64{})
				r.Sys = append(r.Sys, [4]float64{})
			}
			r.Neighbors = []dataset.NeighborJob{{User: "User-20", MaxNodes: 256}}
			if slow {
				r.Neighbors = append(r.Neighbors, dataset.NeighborJob{User: "User-2", MaxNodes: 512})
			}
			if day%2 == 0 {
				// an uncorrelated big user
				r.Neighbors = append(r.Neighbors, dataset.NeighborJob{User: "User-30", MaxNodes: 512})
			}
			ds.Runs = append(ds.Runs, r)
		}
		camp.Datasets = append(camp.Datasets, ds)
	}
	return camp
}

func TestTrainLearnsBlameList(t *testing.T) {
	camp := syntheticCampaign()
	a := Train(camp, Options{})
	blamed := a.Blamed()
	found := false
	for _, u := range blamed {
		if u == "User-2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("User-2 not blamed: %v", blamed)
	}
	for _, u := range blamed {
		if u == "User-20" {
			t.Fatal("constant-presence user blamed (carries no information)")
		}
	}
}

func TestShouldDelay(t *testing.T) {
	camp := syntheticCampaign()
	a := Train(camp, Options{})
	delay, present := a.ShouldDelay([]string{"User-20", "User-2"})
	if !delay || len(present) == 0 {
		t.Fatal("blamed user present but no delay advised")
	}
	delay, present = a.ShouldDelay([]string{"User-20", "User-31"})
	if delay || len(present) != 0 {
		t.Fatal("delay advised with no blamed user present")
	}
}

func TestEvaluationShowsSignal(t *testing.T) {
	camp := syntheticCampaign()
	a := Train(camp, Options{})
	ev := Evaluate(camp, a)
	if ev.Flagged == 0 || ev.Admitted == 0 {
		t.Fatalf("degenerate evaluation: %+v", ev)
	}
	// flagged runs are the User-2 runs, which are 40% slower
	if ev.Improvement <= 0.2 {
		t.Fatalf("advisor found no signal: %+v", ev)
	}
}

func TestTrainEvalSplit(t *testing.T) {
	camp := syntheticCampaign()
	a := Train(camp, Options{TrainFraction: 0.5})
	if a.trainEnd != 10 {
		t.Fatalf("trainEnd = %d", a.trainEnd)
	}
	ev := Evaluate(camp, a)
	// only held-out runs counted: 2 datasets × 10 days
	if ev.Flagged+ev.Admitted != 20 {
		t.Fatalf("evaluated %d runs, want 20", ev.Flagged+ev.Admitted)
	}
}

func TestEmptyEvaluation(t *testing.T) {
	camp := &dataset.Campaign{Days: 10}
	a := Train(camp, Options{})
	ev := Evaluate(camp, a)
	if ev.Flagged != 0 || ev.Admitted != 0 || ev.Improvement != 0 {
		t.Fatalf("empty campaign evaluation = %+v", ev)
	}
}
