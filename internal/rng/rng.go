// Package rng provides deterministic, splittable random-number streams used
// throughout the simulator. Every stochastic component of a campaign draws
// from a stream derived from the campaign seed and a string label, so that
// adding a new consumer of randomness does not perturb existing ones and
// every experiment is exactly reproducible from its seed.
package rng

import (
	"math"
	"math/rand"
)

// Stream is a deterministic random stream. It wraps math/rand with the
// distributions the simulator needs. A Stream is not safe for concurrent
// use; derive per-goroutine streams with Split.
type Stream struct {
	r *rand.Rand
	// base is the seed material the stream was constructed from; Split
	// derives children from it so splitting is order-independent (it does
	// not matter how much of the parent has been consumed).
	base uint64
}

// New returns a stream seeded with the given seed.
func New(seed int64) *Stream {
	b := uint64(seed)
	return &Stream{r: rand.New(rand.NewSource(mix(b))), base: b}
}

// Split derives an independent child stream from this stream's seed material
// and a label. Splitting is stable: the same parent seed and label always
// yield the same child, regardless of how much the parent has been consumed.
func (s *Stream) Split(label string) *Stream {
	b := s.base ^ fnv64(label)
	return &Stream{r: rand.New(rand.NewSource(mix(b))), base: b}
}

// NewLabeled returns a stream derived from seed and a label; equivalent to
// New(seed).Split(label).
func NewLabeled(seed int64, label string) *Stream {
	return New(seed).Split(label)
}

// Float64 returns a uniform value in [0,1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform int in [0,n).
func (s *Stream) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (s *Stream) Int63() int64 { return s.r.Int63() }

// NormFloat64 returns a standard normal variate.
func (s *Stream) NormFloat64() float64 { return s.r.NormFloat64() }

// Normal returns a normal variate with the given mean and standard deviation.
func (s *Stream) Normal(mean, std float64) float64 { return mean + std*s.r.NormFloat64() }

// LogNormal returns a log-normal variate with the given parameters of the
// underlying normal (mu, sigma).
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.r.NormFloat64())
}

// Exp returns an exponential variate with the given mean.
func (s *Stream) Exp(mean float64) float64 { return s.r.ExpFloat64() * mean }

// Uniform returns a uniform value in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*s.r.Float64() }

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool { return s.r.Float64() < p }

// Perm returns a random permutation of [0,n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle shuffles n elements using the provided swap function.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Choice returns a random index in [0,len(weights)) drawn proportionally to
// the (non-negative) weights. If all weights are zero it returns a uniform
// index.
func (s *Stream) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return s.r.Intn(len(weights))
	}
	x := s.r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// AR1 is a first-order autoregressive process used to model slowly varying
// background traffic intensity. Successive values are correlated with
// coefficient Rho and revert to Mean with stationary standard deviation Std.
type AR1 struct {
	Mean, Std, Rho float64

	cur    float64
	inited bool
}

// Next advances the process by one step and returns the new value, clamped
// to be non-negative.
func (p *AR1) Next(s *Stream) float64 {
	if !p.inited {
		p.cur = p.Mean + p.Std*s.NormFloat64()
		p.inited = true
	} else {
		// Innovation variance chosen so the stationary std is p.Std.
		innov := p.Std * math.Sqrt(1-p.Rho*p.Rho)
		p.cur = p.Mean + p.Rho*(p.cur-p.Mean) + innov*s.NormFloat64()
	}
	if p.cur < 0 {
		p.cur = 0
	}
	return p.cur
}

// Value returns the current value without advancing.
func (p *AR1) Value() float64 { return p.cur }

// fnv64 hashes a string with FNV-1a.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// mix applies a SplitMix64 finalizer so nearby seeds produce unrelated
// streams.
func mix(x uint64) int64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x = x ^ (x >> 31)
	return int64(x >> 1) // non-negative
}
