package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("streams with different seeds agreed on %d/100 draws", same)
	}
}

func TestSplitOrderIndependent(t *testing.T) {
	p1 := New(7)
	c1 := p1.Split("netsim")
	v1 := c1.Float64()

	p2 := New(7)
	// consume the parent before splitting; child must be unaffected
	for i := 0; i < 50; i++ {
		p2.Float64()
	}
	c2 := p2.Split("netsim")
	if v2 := c2.Float64(); v2 != v1 {
		t.Fatalf("split not order-independent: %v vs %v", v1, v2)
	}
}

func TestSplitLabelsIndependent(t *testing.T) {
	p := New(7)
	a := p.Split("alpha")
	b := p.Split("beta")
	if a.Float64() == b.Float64() {
		t.Fatal("differently labeled splits produced identical first draw")
	}
}

func TestNewLabeledMatchesSplit(t *testing.T) {
	a := NewLabeled(9, "x")
	b := New(9).Split("x")
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("NewLabeled disagrees with New().Split()")
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) out of range: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(11)
	n := 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumsq/float64(n) - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(std-2) > 0.1 {
		t.Errorf("Normal std = %v, want ~2", std)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(13)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced non-positive value %v", v)
		}
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	s := New(5)
	w := []float64{0, 1, 3}
	counts := make([]int, 3)
	n := 30000
	for i := 0; i < n; i++ {
		counts[s.Choice(w)]++
	}
	if counts[0] != 0 {
		t.Errorf("zero-weight index chosen %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestChoiceAllZeroWeightsUniform(t *testing.T) {
	s := New(5)
	w := []float64{0, 0, 0, 0}
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		idx := s.Choice(w)
		if idx < 0 || idx >= 4 {
			t.Fatalf("Choice out of range: %d", idx)
		}
		seen[idx] = true
	}
	if len(seen) < 3 {
		t.Errorf("uniform fallback hit only %d/4 indices", len(seen))
	}
}

func TestAR1Stationarity(t *testing.T) {
	s := New(21)
	p := &AR1{Mean: 5, Std: 1, Rho: 0.9}
	n := 50000
	var w float64
	var sum, sumsq float64
	// burn-in
	for i := 0; i < 1000; i++ {
		p.Next(s)
	}
	for i := 0; i < n; i++ {
		w = p.Next(s)
		sum += w
		sumsq += w * w
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumsq/float64(n) - mean*mean)
	if math.Abs(mean-5) > 0.15 {
		t.Errorf("AR1 mean = %v, want ~5", mean)
	}
	if math.Abs(std-1) > 0.15 {
		t.Errorf("AR1 std = %v, want ~1", std)
	}
}

func TestAR1NonNegative(t *testing.T) {
	s := New(23)
	p := &AR1{Mean: 0.1, Std: 1, Rho: 0.5}
	for i := 0; i < 5000; i++ {
		if v := p.Next(s); v < 0 {
			t.Fatalf("AR1 produced negative value %v", v)
		}
	}
}

func TestAR1Autocorrelation(t *testing.T) {
	s := New(29)
	p := &AR1{Mean: 0, Std: 1, Rho: 0.95}
	n := 20000
	prev := p.Next(s)
	var sxy, sxx float64
	for i := 0; i < n; i++ {
		cur := p.Next(s)
		sxy += prev * cur
		sxx += prev * prev
		prev = cur
	}
	rho := sxy / sxx
	if rho < 0.9 || rho > 1.0 {
		t.Errorf("lag-1 autocorrelation = %v, want ~0.95", rho)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		s := New(seed)
		p := s.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMixNonNegative(t *testing.T) {
	f := func(x uint64) bool { return mix(x) >= 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(31)
	n := 50000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.25) > 0.02 {
		t.Errorf("Bool(0.25) frequency = %v", p)
	}
}
