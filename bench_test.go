// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each benchmark
// regenerates its artifact from the shared simulated campaign and reports
// the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. The campaign itself is generated once
// and cached under testdata/ (about four minutes on first run); its scale
// is controlled by the DRAGONVAR_BENCH_DAYS and DRAGONVAR_BENCH_SMALL
// environment variables.
package dragonvar

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"sync"
	"testing"

	"dragonvar/internal/advisor"
	"dragonvar/internal/apps"
	"dragonvar/internal/cluster"
	"dragonvar/internal/core"
	"dragonvar/internal/dataset"
	"dragonvar/internal/desim"
	"dragonvar/internal/experiments"
	"dragonvar/internal/gbr"
	"dragonvar/internal/linreg"
	"dragonvar/internal/netsim"
	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

func mathSqrt(v float64) float64 { return math.Sqrt(v) }

const benchSeed = 42

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
	benchErr   error
)

// benchConfig derives the campaign scale from the environment.
func benchConfig() (cluster.Config, string) {
	days := 130.0
	if v := os.Getenv("DRAGONVAR_BENCH_DAYS"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			days = f
		}
	}
	cfg := cluster.Config{Days: days, Seed: benchSeed}
	tag := "cori"
	if os.Getenv("DRAGONVAR_BENCH_SMALL") != "" {
		cfg.Machine = topology.Small()
		tag = "small"
	}
	cache := fmt.Sprintf("testdata/campaign-%s-d%g-s%d.gob", tag, days, benchSeed)
	if tag == "cori" && days == 130 {
		cache = "testdata/campaign.gob" // the canonical cache the CLI writes
	}
	return cfg, cache
}

// suite lazily generates (or loads) the campaign and cluster shared by all
// benchmarks.
func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		cfg, cache := benchConfig()
		camp, err := core.LoadOrGenerate(core.CampaignConfig{Cluster: cfg, CachePath: cache})
		if err != nil {
			benchErr = err
			return
		}
		cl, err := cluster.New(cfg) // cluster state for the re-simulating figures
		if err != nil {
			benchErr = err
			return
		}
		benchSuite = &experiments.Suite{Camp: camp, Clust: cl, Seed: benchSeed}
	})
	if benchErr != nil {
		b.Fatalf("campaign setup: %v", benchErr)
	}
	return benchSuite
}

// report emits a labeled custom metric.
func reportMetric(b *testing.B, value float64, unit string) {
	b.ReportMetric(value, unit)
}

func BenchmarkTable1_ApplicationInputs(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		out := s.Table1()
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2_CounterRegistry(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		out := s.Table2()
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable3_NeighborhoodMI(b *testing.B) {
	s := suite(b)
	var recurring map[string]int
	for i := 0; i < b.N; i++ {
		_, _, recurring = s.Table3()
	}
	reportMetric(b, float64(len(recurring)), "recurring-users")
	b.Logf("\n%s", render(func() string { out, _, _ := s.Table3(); return out }))
}

func BenchmarkFigure1_RelativePerformance(b *testing.B) {
	s := suite(b)
	var maxima map[string]float64
	for i := 0; i < b.N; i++ {
		_, maxima = s.Figure1()
	}
	var worst float64
	for _, v := range maxima {
		if v > worst {
			worst = v
		}
	}
	reportMetric(b, worst, "max-relative-slowdown")
}

func BenchmarkFigure2_TopologyCensus(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if len(s.Figure2()) == 0 {
			b.Fatal("empty census")
		}
	}
}

func BenchmarkFigure3_MeanStepBehavior(b *testing.B) {
	s := suite(b)
	var trends map[string][]float64
	for i := 0; i < b.N; i++ {
		_, trends = s.Figure3()
	}
	reportMetric(b, float64(len(trends)), "datasets")
}

func BenchmarkFigure4_AMG_MILC_Profile(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if len(s.Figure4()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure5_miniVite_UMT_Profile(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if len(s.Figure5()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure7_CounterTrends(b *testing.B) {
	s := suite(b)
	var corr map[string]float64
	for i := 0; i < b.N; i++ {
		_, corr = s.Figure7()
	}
	reportMetric(b, corr["RT_FLIT_TOT"], "flit-trend-corr")
	reportMetric(b, corr["RT_RB_STL"], "stall-trend-corr")
}

func BenchmarkFigure8_ForecastAMG(b *testing.B) {
	s := suite(b)
	var results []core.ForecastResult
	for i := 0; i < b.N; i++ {
		_, results = s.Figure8()
	}
	reportMetric(b, bestMAPE(results), "best-mape-pct")
}

func BenchmarkFigure9_DeviationRelevance(b *testing.B) {
	s := suite(b)
	var results []core.DeviationResult
	for i := 0; i < b.N; i++ {
		_, results = s.Figure9()
	}
	var worst float64
	for _, r := range results {
		if r.MAPE > worst {
			worst = r.MAPE
		}
	}
	reportMetric(b, worst, "worst-mape-pct")
}

func BenchmarkFigure10_ForecastMILC(b *testing.B) {
	s := suite(b)
	var results []core.ForecastResult
	for i := 0; i < b.N; i++ {
		_, results = s.Figure10()
	}
	reportMetric(b, bestMAPE(results), "best-mape-pct")
}

func BenchmarkFigure11_ForecastImportances(b *testing.B) {
	s := suite(b)
	var imps map[string][]float64
	for i := 0; i < b.N; i++ {
		_, imps = s.Figure11()
	}
	reportMetric(b, float64(len(imps)), "models")
}

func BenchmarkFigure12_LongRunForecast(b *testing.B) {
	s := suite(b)
	var segs []core.SegmentForecast
	for i := 0; i < b.N; i++ {
		var err error
		_, segs, err = s.Figure12()
		if err != nil {
			b.Fatal(err)
		}
	}
	reportMetric(b, core.SegmentMAPE(segs), "segment-mape-pct")
}

// --- ablation benches: the design choices DESIGN.md calls out ---

// BenchmarkAblationAdaptiveRouting compares peak link utilization with
// adaptive routing on and off under the same hotspot traffic: adaptive
// routing should spread load (the §II-A mechanism the variability story
// rests on).
func BenchmarkAblationAdaptiveRouting(b *testing.B) {
	d, err := topology.New(topology.Small())
	if err != nil {
		b.Fatal(err)
	}
	mk := func(adaptive bool) float64 {
		cfg := netsim.DefaultConfig()
		cfg.Adaptive = adaptive
		n := netsim.New(d, cfg, rng.New(1))
		var flows []netsim.Flow
		src := d.RouterAt(0, 1, 1)
		dst := d.RouterAt(5, 2, 3)
		for j := 0; j < 12; j++ {
			flows = append(flows, netsim.Flow{Src: src, Dst: dst, Flits: 2e9, Packets: 1e5, RequestFraction: 1})
		}
		return n.RunRound(flows, nil, 1.0).MaxLinkUtilization
	}
	var adaptive, minimal float64
	for i := 0; i < b.N; i++ {
		adaptive = mk(true)
		minimal = mk(false)
	}
	reportMetric(b, minimal/adaptive, "peak-util-ratio")
	if minimal <= adaptive {
		b.Fatal("adaptive routing failed to spread load")
	}
}

// BenchmarkAblationAttention compares the attention forecaster with the
// mean-pooling baseline on the same windows.
func BenchmarkAblationAttention(b *testing.B) {
	s := suite(b)
	ds := s.Camp.Get("MILC-128")
	if ds == nil || len(ds.Runs) < 4 {
		b.Skip("no MILC-128 data")
	}
	spec := core.ForecastSpec{M: 10, K: 20}
	var att, pool float64
	for i := 0; i < b.N; i++ {
		opt := core.ForecastOptions{Folds: 3}
		att = core.Forecast(ds, spec, opt, benchSeed).MAPE
		opt.NN.EmbedDim = 8
		opt.NN.HiddenDim = 16
		opt.NN.Epochs = 35
		opt.NN.BatchSize = 16
		opt.NN.LearningRate = 0.01
		opt.NN.UseAttention = false
		opt.NN.MaxSamples = 1200
		pool = core.Forecast(ds, spec, opt, benchSeed).MAPE
	}
	reportMetric(b, att, "attention-mape-pct")
	reportMetric(b, pool, "meanpool-mape-pct")
}

// BenchmarkAblationPlacementCompactness measures how allocation
// fragmentation changes a job's placement features (the NUM_ROUTERS /
// NUM_GROUPS inputs of the forecaster).
func BenchmarkAblationPlacementCompactness(b *testing.B) {
	s := suite(b)
	ds := s.Camp.Get("MILC-128")
	if ds == nil || len(ds.Runs) == 0 {
		b.Skip("no data")
	}
	var minG, maxG = 1 << 30, 0
	for i := 0; i < b.N; i++ {
		minG, maxG = 1<<30, 0
		for _, r := range ds.Runs {
			if r.NumGroups < minG {
				minG = r.NumGroups
			}
			if r.NumGroups > maxG {
				maxG = r.NumGroups
			}
		}
	}
	reportMetric(b, float64(minG), "min-groups")
	reportMetric(b, float64(maxG), "max-groups")
}

// BenchmarkAblationGBRvsLinear compares the paper's gradient boosted
// deviation model with a ridge-regression baseline (the approach of the
// related work it improves over) on the same deviation samples.
func BenchmarkAblationGBRvsLinear(b *testing.B) {
	s := suite(b)
	ds := s.Camp.Get("MILC-128")
	if ds == nil || len(ds.Runs) < 4 {
		b.Skip("no MILC-128 data")
	}
	x, y, _, _ := ds.DeviationSamples()
	// deterministic subsample for speed
	st := rng.New(benchSeed)
	idx := st.Perm(x.Rows)
	if len(idx) > 4000 {
		idx = idx[:4000]
	}
	cut := len(idx) * 3 / 4
	train, test := idx[:cut], idx[cut:]

	var gbrRMSE, linRMSE float64
	for i := 0; i < b.N; i++ {
		gm := gbr.Fit(x, y, train, nil, gbr.Options{NumTrees: 60}, rng.New(benchSeed))
		lm, err := linreg.Fit(x, y, train, linreg.Options{})
		if err != nil {
			b.Fatal(err)
		}
		var gs, ls float64
		for _, t := range test {
			dg := gm.Predict(x.Row(t)) - y[t]
			dl := lm.Predict(x.Row(t)) - y[t]
			gs += dg * dg
			ls += dl * dl
		}
		n := float64(len(test))
		gbrRMSE = mathSqrt(gs / n)
		linRMSE = mathSqrt(ls / n)
	}
	reportMetric(b, gbrRMSE, "gbr-rmse-s")
	reportMetric(b, linRMSE, "linear-rmse-s")
	if gbrRMSE >= linRMSE {
		b.Logf("note: GBR (%.3f) did not beat linear (%.3f) on this dataset", gbrRMSE, linRMSE)
	}
}

// BenchmarkAblationFlowVsPacket cross-checks the flow-level model against
// the packet-level discrete-event simulator: across three load levels the
// two must agree on ordering and convexity.
func BenchmarkAblationFlowVsPacket(b *testing.B) {
	d, err := topology.New(topology.Config{
		Groups: 4, Rows: 2, Cols: 3, NodesPerRouter: 2,
		GlobalLinksPerRouter: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	src, dst := d.RouterAt(0, 0, 0), d.RouterAt(2, 1, 1)
	var flowSlow, pktLat [3]float64
	for i := 0; i < b.N; i++ {
		for li, load := range []float64{0.2, 0.5, 0.8} {
			// flow model: single flow at a fraction of link bandwidth
			n := netsim.New(d, netsim.DefaultConfig(), rng.New(1))
			f := []netsim.Flow{{Src: src, Dst: dst,
				Flits: load * netsim.DefaultConfig().LinkBandwidth, Packets: 1e4, RequestFraction: 1}}
			flowSlow[li] = n.RunRound(f, nil, 1.0).Slowdown[0]

			// packet model: matching injection rate (packets of 4 flits)
			sim := desim.New(d, desim.Config{QueueDepth: 8, PacketFlits: 4, Adaptive: false, MaxCandidates: 1}, rng.New(1))
			st, err := sim.Run([]desim.TrafficSpec{{Src: src, Dst: dst, Rate: load / 4}}, 30000)
			if err != nil {
				b.Fatal(err)
			}
			pktLat[li] = st.MeanLatency
		}
	}
	// both must be increasing and convex in load
	for _, v := range [2][3]float64{flowSlow, pktLat} {
		if !(v[0] < v[1] && v[1] < v[2]) {
			b.Fatalf("model not monotone in load: %v", v)
		}
		if (v[2] - v[1]) <= (v[1] - v[0]) {
			b.Fatalf("model not convex in load: %v", v)
		}
	}
	reportMetric(b, flowSlow[2]/flowSlow[0], "flow-slowdown-ratio")
	reportMetric(b, pktLat[2]/pktLat[0], "packet-latency-ratio")
}

// BenchmarkAblationSchedulingAdvisor evaluates the paper's future-work
// proposal: train the blame-list advisor on the first half of the campaign
// and measure, on the second half, how much slower the runs it would have
// delayed actually were.
func BenchmarkAblationSchedulingAdvisor(b *testing.B) {
	s := suite(b)
	var ev advisor.Evaluation
	for i := 0; i < b.N; i++ {
		// blame only the users that recur in most datasets' lists: with the
		// default threshold the busy production machine always has some
		// blamed user running and the advisor would delay everything
		a := advisor.Train(s.Camp, advisor.Options{
			Neighborhood: core.NeighborhoodOptions{TopK: 5},
			MinLists:     4,
		})
		ev = advisor.Evaluate(s.Camp, a)
	}
	reportMetric(b, ev.FlaggedMeanRel, "flagged-mean-rel")
	reportMetric(b, ev.AdmittedMeanRel, "admitted-mean-rel")
	reportMetric(b, float64(ev.Flagged), "flagged-runs")
	reportMetric(b, float64(ev.Admitted), "admitted-runs")
}

// BenchmarkAblationPlacementWhatIf re-simulates the same MILC job compactly
// and fragmented against the same background (the placement-policy question
// of the paper's future work) and reports how much faster the compact
// placement ran.
func BenchmarkAblationPlacementWhatIf(b *testing.B) {
	s := suite(b)
	milc := findModel(b, "MILC", 128)
	var speedup float64
	for i := 0; i < b.N; i++ {
		w, err := s.Clust.PlacementWhatIf(milc, 40, s.Camp.Days*86400*0.4, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		speedup = w.CompactSpeedup()
	}
	reportMetric(b, speedup, "compact-speedup")
}

// --- component microbenchmarks ---

// benchRoundFlows builds the standard 256-flow round-loop workload.
func benchRoundFlows(b *testing.B, d *topology.Dragonfly) []netsim.Flow {
	b.Helper()
	var flows []netsim.Flow
	for g := 0; g < 8; g++ {
		for c := 0; c < 32; c++ {
			flows = append(flows, netsim.Flow{
				Src:             d.RouterAt(topology.GroupID(g), c%4, c%6),
				Dst:             d.RouterAt(topology.GroupID((g+3)%9), (c+1)%4, (c+2)%6),
				Flits:           1e8,
				Packets:         1e4,
				RequestFraction: 0.8,
			})
		}
	}
	return flows
}

// BenchmarkNetsimRound times one simulation round per routing policy over
// pre-resolved routes — the campaign's hot path. The serial round-loop
// throughput numbers in docs/PERFORMANCE.md and the BENCH_engine.json
// ledger come from this workload shape.
func BenchmarkNetsimRound(b *testing.B) {
	for _, pol := range []string{"adaptive", "minimal"} {
		b.Run(pol, func(b *testing.B) {
			d, err := topology.New(topology.Small())
			if err != nil {
				b.Fatal(err)
			}
			cfg := netsim.DefaultConfig()
			cfg.Routing = pol
			n := netsim.New(d, cfg, rng.New(1))
			n.ReuseSlowdowns(true)
			flows := benchRoundFlows(b, d)
			routed := n.Resolve(flows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.RunRoundRouted(flows, routed, nil, 1.0)
			}
			reportMetric(b, float64(len(flows)), "flows")
		})
	}
}

func BenchmarkCampaignDay(b *testing.B) {
	// cost of simulating one campaign day at reduced scale
	for i := 0; i < b.N; i++ {
		c, err := cluster.New(cluster.Config{
			Machine: topology.Small(),
			Days:    1,
			Seed:    int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.RunCampaign(); err != nil {
			b.Fatal(err)
		}
	}
}

// bestMAPE returns the lowest non-negative MAPE of the results.
func bestMAPE(results []core.ForecastResult) float64 {
	best := -1.0
	for _, r := range results {
		if r.MAPE >= 0 && (best < 0 || r.MAPE < best) {
			best = r.MAPE
		}
	}
	return best
}

// render safely captures a rendering closure's output for b.Logf.
func render(f func() string) string { return f() }

// ensure the dataset import is used even when benches are filtered
var _ = dataset.Campaign{}

// findModel fetches a Table I model by app name and node count.
func findModel(b *testing.B, app string, nodes int) *apps.Model {
	b.Helper()
	for _, m := range apps.Registry() {
		if m.App.String() == app && m.Nodes == nodes {
			return m
		}
	}
	b.Fatalf("no model %s-%d", app, nodes)
	return nil
}
