package dragonvar

import (
	"encoding/json"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"dragonvar/internal/telemetry"
)

// skipDirs are directories the doc-lint walks never descend into.
var skipDirs = map[string]bool{".git": true, "testdata": true, "docs": true, "plots": true, "csv": true}

// goPackageDirs returns every directory in the repository containing
// non-test Go files.
func goPackageDirs(t *testing.T) []string {
	t.Helper()
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDirs[d.Name()] {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

// TestPackageDocComments requires every package in the repository to carry
// a godoc package comment on at least one of its files.
func TestPackageDocComments(t *testing.T) {
	for _, dir := range goPackageDirs(t) {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		documented := false
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			f, err := parser.ParseFile(token.NewFileSet(), filepath.Join(dir, e.Name()), nil,
				parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			t.Errorf("package %s has no doc comment on any file", dir)
		}
	}
}

// markdownFiles lists the documentation the link checker covers: every
// top-level *.md plus everything under docs/.
func markdownFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, pattern := range []string{"*.md", "docs/*.md"} {
		matches, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, matches...)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found; is the test running at the repo root?")
	}
	return files
}

var mdLink = regexp.MustCompile(`\[[^][]*\]\(([^()\s]+)\)`)

// TestMarkdownLinks resolves every intra-repository markdown link in the
// README and docs/ against the filesystem. External links (http, https,
// mailto) are skipped; fragments are stripped before the stat.
func TestMarkdownLinks(t *testing.T) {
	for _, md := range markdownFiles(t) {
		blob, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(blob), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" { // pure fragment: links within the same file
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved to %s)", md, m[1], resolved)
			}
		}
	}
}

// TestPerformanceDocCoverage keeps docs/PERFORMANCE.md in sync with the
// benchmark ledger: every field appearing in any BENCH_engine.json row
// must be documented, so the ledger schema can't drift silently.
func TestPerformanceDocCoverage(t *testing.T) {
	blob, err := os.ReadFile("docs/PERFORMANCE.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(blob)
	ledger, err := os.ReadFile("BENCH_engine.json")
	if err != nil {
		t.Fatal(err)
	}
	var rows []map[string]interface{}
	if err := json.Unmarshal(ledger, &rows); err != nil {
		t.Fatalf("BENCH_engine.json is not a result array: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("BENCH_engine.json has no rows")
	}
	for _, row := range rows {
		for field := range row {
			if !strings.Contains(doc, "`"+field+"`") {
				t.Errorf("ledger field %q not documented in docs/PERFORMANCE.md", field)
			}
		}
	}
}

// TestObservabilityDocCoverage keeps docs/OBSERVABILITY.md in sync with
// the telemetry name registry: every metric and span the repository can
// emit must be documented.
func TestObservabilityDocCoverage(t *testing.T) {
	blob, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(blob)
	for _, name := range telemetry.AllMetricNames {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("metric %q not documented in docs/OBSERVABILITY.md", name)
		}
	}
	for _, name := range telemetry.AllSpanNames {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("span %q not documented in docs/OBSERVABILITY.md", name)
		}
	}
}
