module dragonvar

go 1.22
